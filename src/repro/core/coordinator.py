"""The Celestial coordinator.

The coordinator computes satellite orbital paths and networking
characteristics and sends this information to the Celestial hosts, which
update machines and network links accordingly (§3, Fig. 2).  In this
reproduction the coordinator additionally creates microVMs lazily: a
satellite server is instantiated on a host the first time it enters the
bounding box, mirroring how Celestial only expends host resources on
emulated (in-box) satellites.

Differential, sharded fan-out
-----------------------------

After the first epoch the coordinator runs the differential update
pipeline: :meth:`Coordinator.update` asks the constellation calculation for
a :class:`~repro.core.constellation.ConstellationDiff` against the
previously published state, stores state + diff in the database (which
keeps the rolling diff history and periodic keyframes), and then **shards**
the change set by host: each machine manager receives a
:class:`~repro.core.machine_manager.HostStateSlice` restricted to its own
machines — activity transitions, touched links, and per-ground-station
delay vectors batched through the vectorised ``delays_from`` /
``edge_ids_between`` paths — instead of the full constellation state.  The
slices are fanned out concurrently (one thread per manager; managers only
touch their own host's machines, so the application is embarrassingly
parallel), and the virtual network consumes the same diff centrally.  The
distribution policy (who receives what) thus lives entirely in this layer;
the update producer is oblivious to it, in the spirit of RAFDA's separation
of application logic from distribution concerns.

The same separation applies one layer down: since PR 3 the shortest-path
tables behind the per-ground-station delay vectors come from the
incremental :class:`~repro.topology.paths.PathEngine`, which decides per
epoch how much solver work a :class:`TopologyDiff` actually requires
(none / repair / rebuild).  The coordinator is oblivious to that policy
too — ``delays_from`` slices engine-repaired rows into
:class:`~repro.core.machine_manager.HostStateSlice` unchanged, because the
engine's tables are byte-identical to cold solves.

The thread-vs-process seam
--------------------------

Since PR 4 *where* the slices are applied is a backend decision
(``parallelism="threads" | "processes"``, default threads):

* ``threads`` — the managers live in this process and
  :class:`~repro.dist.backend.ThreadFanoutBackend` applies the slices over
  a persistent thread pool (the PR 2/3 behaviour).  Pure-Python per-host
  sweeps serialise on the GIL, but nothing crosses a process boundary.
* ``processes`` — :class:`~repro.dist.backend.ProcessFanoutBackend` owns a
  pool of supervised worker processes (``repro.dist``), each holding the
  authoritative managers of one or more hosts.  Slices travel as compact
  buffer-backed wire frames, the per-host sweeps run genuinely in parallel,
  and usage samples / counters / dirty-machine reconciliation results
  stream back.  The coordinator keeps in-process *shadow* managers for
  placement and parent-side queries; crashed workers are respawned and
  replayed from the database's keyframe + diff chain.  ``transport``
  selects how the frames travel: local duplex pipes (``"pipe"``, default)
  or per-worker TCP connections (``"tcp"``) — the latter also accepts
  operator-started workers on other machines, like the paper's testbed
  (see :mod:`repro.dist.transport`).

Both backends are driven through the same four calls (``apply_slices``,
``apply_full_state``, ``sample_all``, ``close``), so everything above this
seam — sharding, diff pipeline, stats — is backend-agnostic, and the
observable results (machine states, suspend/resume counters, usage
samples) are byte-identical between the two.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.core.config import Configuration
from repro.core.constellation import (
    ConstellationCalculation,
    ConstellationDiff,
    ConstellationState,
    MachineId,
)
from repro.core.database import ConstellationDatabase
from repro.core.machine_manager import HostStateSlice, MachineManager
from repro.net.network import VirtualNetwork
from repro.sim import Simulation


@dataclass
class UpdateStats:
    """Bookkeeping about coordinator updates (used by the <1 s update claim)."""

    count: int = 0
    wallclock_seconds: list[float] = field(default_factory=list)
    full_updates: int = 0
    diff_updates: int = 0
    diff_change_counts: list[int] = field(default_factory=list)
    #: Wall-clock of the fan-out step alone (slice/state application),
    #: one entry per update — the quantity the thread-vs-process
    #: benchmark compares.
    fanout_seconds: list[float] = field(default_factory=list)
    #: Wall-clock of each usage-sampling sweep (``sample_all_usage``).
    sample_seconds: list[float] = field(default_factory=list)
    #: Transport ack round-trip seconds per worker slot (process backends
    #: only; empty under the thread backend, which has no transport).
    worker_ack_seconds: dict[int, list[float]] = field(default_factory=dict)
    #: Cumulative :class:`~repro.topology.paths.PathEngineStats` snapshot
    #: of the calculation's path engine after the latest update.  Includes
    #: the multi-table attribution counters (``tables_advanced``,
    #: ``batched_calls``/``batched_rows`` of the epoch-batched
    #: ``advance_all`` path) and the extra-table cache's
    #: ``cache_hits``/``cache_misses``/``cache_evictions``, so all-pairs
    #: runs are observable through ``ExperimentResult.path_statistics``.
    path_engine_totals: dict[str, int] = field(default_factory=dict)
    #: Per-update path-repair regime, derived from the engine's counter
    #: deltas: ``"bypass"`` (churn guard cold-solved), ``"structural"``
    #: / ``"repair"`` (the engine repaired a structural / delay-only
    #: diff), ``"reuse"`` (empty diff), ``"cold"`` (full solve, e.g. the
    #: first epoch) or ``"none"`` (no engine activity).
    path_regimes: list[str] = field(default_factory=list)

    def record_path_engine(self, before: dict[str, int], after: dict[str, int]) -> None:
        """Fold one update's path-engine counter delta into the stats."""
        self.path_engine_totals = after
        for regime, counter in (
            ("bypass", "bypassed_epochs"),
            ("structural", "structural_epochs"),
            ("repair", "repaired_epochs"),
            ("reuse", "empty_reuses"),
            ("cold", "cold_solves"),
        ):
            if after.get(counter, 0) > before.get(counter, 0):
                self.path_regimes.append(regime)
                return
        self.path_regimes.append("none")

    @property
    def path_cache_events(self) -> dict[str, int]:
        """Extra-table cache totals (hits/misses/evictions) so far."""
        totals = self.path_engine_totals
        return {
            "hits": totals.get("cache_hits", 0),
            "misses": totals.get("cache_misses", 0),
            "evictions": totals.get("cache_evictions", 0),
        }

    @property
    def mean_wallclock_s(self) -> float:
        """Mean wall-clock duration of one constellation update."""
        if not self.wallclock_seconds:
            return 0.0
        return sum(self.wallclock_seconds) / len(self.wallclock_seconds)

    @property
    def max_wallclock_s(self) -> float:
        """Longest wall-clock duration of one constellation update."""
        return max(self.wallclock_seconds, default=0.0)


class Coordinator:
    """Drives periodic constellation updates and distributes them to hosts."""

    def __init__(
        self,
        config: Configuration,
        calculation: ConstellationCalculation,
        database: ConstellationDatabase,
        managers: list[MachineManager],
        network: Optional[VirtualNetwork] = None,
        incremental: bool = True,
        concurrent_fanout: bool = True,
        parallelism: Literal["threads", "processes"] = "threads",
        worker_count: Optional[int] = None,
        mp_context=None,
        transport="pipe",
    ):
        self.config = config
        self.calculation = calculation
        self.database = database
        self.network = network
        self.incremental = incremental
        self.concurrent_fanout = concurrent_fanout
        self.parallelism = parallelism
        # The backends are imported lazily: repro.dist itself imports from
        # repro.core, so a module-level import would be circular.
        if parallelism == "processes":
            from repro.dist.backend import ProcessFanoutBackend

            self._backend = ProcessFanoutBackend(
                managers,
                database,
                worker_count=worker_count,
                mp_context=mp_context,
                transport=transport,
            )
        elif parallelism == "threads":
            if transport not in (None, "pipe"):
                # Silently running in-process after the user asked for a
                # worker transport would fake a passing remote-path test.
                raise ValueError(
                    f"transport={transport!r} requires parallelism='processes' "
                    "(the thread backend has no workers to transport to)"
                )
            from repro.dist.backend import ThreadFanoutBackend

            self._backend = ThreadFanoutBackend(managers, concurrent=concurrent_fanout)
        else:
            raise ValueError(f"unknown parallelism backend {parallelism!r}")
        # In process mode these are MirroredManager proxies (shadow +
        # forwarding); in thread mode they are the managers passed in.
        self.managers = list(self._backend.managers)
        self.stats = UpdateStats()
        self._machine_manager_of: dict[str, MachineManager] = {}
        # Distribution-layer shard map: flat node index → manager position
        # (-1 while no microVM exists) plus the per-manager node lists, both
        # maintained incrementally as machines are created.
        self._node_owner = np.full(len(calculation.node_index), -1, dtype=np.int64)
        self._host_nodes: list[list[int]] = [[] for _ in managers]
        self._manager_position = {
            id(manager): pos for pos, manager in enumerate(self.managers)
        }

    # -- machine bookkeeping -------------------------------------------------

    def manager_for(self, machine: MachineId) -> MachineManager:
        """The machine manager hosting a machine."""
        if machine.name not in self._machine_manager_of:
            raise KeyError(f"machine {machine.name!r} has not been created")
        return self._machine_manager_of[machine.name]

    def has_machine(self, machine: MachineId) -> bool:
        """Whether a microVM exists for the machine."""
        return machine.name in self._machine_manager_of

    def _least_loaded_manager(self) -> MachineManager:
        return min(
            self.managers,
            key=lambda manager: manager.host.reserved_memory_mib(),
        )

    def _node_of(self, machine: MachineId) -> int:
        index = self.calculation.node_index
        if machine.is_ground_station:
            return index.ground_station(machine.name)
        return index.satellite(machine.shell, machine.identifier)

    def create_machine(
        self, machine: MachineId, now_s: float, boot: bool = True
    ) -> MachineManager:
        """Create (and optionally boot) a microVM for a machine."""
        if self.has_machine(machine):
            return self.manager_for(machine)
        if machine.is_ground_station:
            compute = self.config.ground_station_config(machine.name).compute
        else:
            compute = self.config.shells[machine.shell].compute
        manager = self._least_loaded_manager()
        manager.create_machine(machine, compute)
        if boot:
            manager.boot(machine, now_s)
        self._machine_manager_of[machine.name] = manager
        position = self._manager_position[id(manager)]
        node = self._node_of(machine)
        self._node_owner[node] = position
        self._host_nodes[position].append(node)
        return manager

    def create_ground_stations(self, now_s: float) -> None:
        """Create and boot the microVMs of all configured ground stations."""
        for name in self.config.ground_station_names:
            self.create_machine(self.calculation.ground_station(name), now_s)

    def _ensure_active_satellites(self, state: ConstellationState, now_s: float) -> None:
        for shell_index, active in state.active_satellites.items():
            for identifier in active.nonzero()[0]:
                machine = self.calculation.satellite(shell_index, int(identifier))
                if not self.has_machine(machine):
                    self.create_machine(machine, now_s)

    def _ensure_activated_satellites(self, diff: ConstellationDiff, now_s: float) -> None:
        """Create microVMs for satellites that just entered the bounding box.

        Satellites active before this epoch already received their microVM
        when they first became active, so only the ``activated`` transitions
        of the diff can require new machines.
        """
        for shell_index, identifiers in diff.activated.items():
            for identifier in identifiers:
                machine = self.calculation.satellite(shell_index, int(identifier))
                if not self.has_machine(machine):
                    self.create_machine(machine, now_s)

    # -- sharding --------------------------------------------------------------

    def _group_transitions_by_manager(
        self, diff: ConstellationDiff
    ) -> tuple[list[list[MachineId]], list[list[MachineId]]]:
        """One pass over the diff's activity transitions, grouped by owner."""
        activated: list[list[MachineId]] = [[] for _ in self.managers]
        deactivated: list[list[MachineId]] = [[] for _ in self.managers]
        for transitions, grouped in (
            (diff.activated, activated),
            (diff.deactivated, deactivated),
        ):
            for shell_index, identifiers in transitions.items():
                for identifier in identifiers:
                    machine = self.calculation.satellite(shell_index, int(identifier))
                    manager = self._machine_manager_of.get(machine.name)
                    if manager is not None:
                        grouped[self._manager_position[id(manager)]].append(machine)
        return activated, deactivated

    def _slice_for(
        self,
        position: int,
        state: ConstellationState,
        manager: MachineManager,
        activated: list[MachineId],
        deactivated: list[MachineId],
        gst_delay_rows: dict[str, np.ndarray],
        added_endpoints: np.ndarray,
        added_delays: np.ndarray,
        removed_endpoints: np.ndarray,
        changed_endpoints: np.ndarray,
        changed_delays: np.ndarray,
    ) -> HostStateSlice:
        """Restrict one epoch's change set to the machines of one host."""
        owner = self._node_owner
        machine_nodes = np.array(self._host_nodes[position], dtype=np.int64)

        def _touching(endpoints: np.ndarray) -> np.ndarray:
            if endpoints.shape[0] == 0:
                return np.empty(0, dtype=bool)
            return (owner[endpoints[:, 0]] == position) | (
                owner[endpoints[:, 1]] == position
            )

        added_mask = _touching(added_endpoints)
        removed_mask = _touching(removed_endpoints)
        changed_mask = _touching(changed_endpoints)

        dirty_active = {
            machine.name: state.is_active(machine)
            for machine in manager.dirty_machine_ids()
            if not machine.is_ground_station
        }

        gst_delays = {
            name: delays[machine_nodes] for name, delays in gst_delay_rows.items()
        }
        # Direct ground-station↔machine uplink parameters, resolved with a
        # single vectorised edge_ids_between lookup over the full GST×machine
        # pair matrix of this host.
        uplink_delays: dict[str, np.ndarray] = {}
        uplink_bandwidths: dict[str, np.ndarray] = {}
        graph = state.graph
        gst_names = list(gst_delay_rows)
        if gst_names and machine_nodes.size:
            gst_nodes = np.array(
                [state.node_index.ground_station(name) for name in gst_names],
                dtype=np.int64,
            )
            edges = graph.edge_ids_between(
                np.repeat(gst_nodes, machine_nodes.size),
                np.tile(machine_nodes, gst_nodes.size),
            ).reshape(gst_nodes.size, machine_nodes.size)
            found = edges >= 0
            delays = np.where(found, graph.delays_ms[np.maximum(edges, 0)], np.inf)
            bandwidths = np.where(
                found, graph.bandwidths_kbps[np.maximum(edges, 0)], 0.0
            )
            for row, name in enumerate(gst_names):
                uplink_delays[name] = delays[row]
                uplink_bandwidths[name] = bandwidths[row]

        return HostStateSlice(
            host_index=manager.host.index,
            time_s=state.time_s,
            epoch=self.database.epoch,
            activated=tuple(activated),
            deactivated=tuple(deactivated),
            dirty_active=dirty_active,
            machine_nodes=machine_nodes,
            links_added=added_endpoints[added_mask],
            added_delays_ms=added_delays[added_mask],
            links_removed=removed_endpoints[removed_mask],
            links_delay_changed=changed_endpoints[changed_mask],
            delay_changed_ms=changed_delays[changed_mask],
            gst_delays_ms=gst_delays,
            uplink_delays_ms=uplink_delays,
            uplink_bandwidths_kbps=uplink_bandwidths,
        )

    def _shard(
        self, state: ConstellationState, diff: ConstellationDiff
    ) -> list[HostStateSlice]:
        """Split one epoch's change set into per-host slices."""
        topology = diff.topology
        added_endpoints = topology.added_endpoints()
        added_delays = topology.current.delays_ms[topology.links_added]
        removed_endpoints = topology.removed_endpoints()
        changed_endpoints = topology.delay_changed_endpoints()
        changed_delays = topology.delay_changed_values_ms()
        # One vectorised delays_from() per ground station, sliced per host.
        gst_delay_rows = {
            name: state.paths.delays_from(state.node_index.ground_station(name))
            for name in self.config.ground_station_names
            if state.paths.has_source(state.node_index.ground_station(name))
        }
        activated_by_host, deactivated_by_host = self._group_transitions_by_manager(diff)
        return [
            self._slice_for(
                position,
                state,
                manager,
                activated_by_host[position],
                deactivated_by_host[position],
                gst_delay_rows,
                added_endpoints,
                added_delays,
                removed_endpoints,
                changed_endpoints,
                changed_delays,
            )
            for position, manager in enumerate(self.managers)
        ]

    def _fan_out(self, slices: list[HostStateSlice], now_s: float) -> None:
        """Apply the per-host slices through the configured backend.

        Each manager only mutates its own host's machines, so the slices
        can be applied in parallel; the per-manager counters and machine
        transitions are deterministic regardless of completion order (and
        of the backend: threads and worker processes produce byte-identical
        observable state).
        """
        started = wallclock.perf_counter()
        self._backend.apply_slices(slices, now_s)
        self.stats.fanout_seconds.append(wallclock.perf_counter() - started)

    def sample_all_usage(
        self, now_s: float, setup_phase: bool = False, applying_update: bool = False
    ):
        """One usage-sampling sweep over every host, via the backend.

        With the process backend the per-host sweeps (which walk every
        microVM of a host in Python) run genuinely in parallel in the
        workers and the samples stream back; with the thread backend they
        run over the fan-out pool.  Results are identical either way and
        are recorded into the per-host resource traces.
        """
        started = wallclock.perf_counter()
        samples = self._backend.sample_all(
            now_s, setup_phase=setup_phase, applying_update=applying_update
        )
        self.stats.sample_seconds.append(wallclock.perf_counter() - started)
        self._merge_transport_latencies()
        return samples

    def _merge_transport_latencies(self) -> None:
        """Fold the backend's drained ack latencies into the stats."""
        for worker, latencies in self._backend.drain_transport_latencies().items():
            self.stats.worker_ack_seconds.setdefault(worker, []).extend(latencies)

    def close(self) -> None:
        """Release the fan-out backend (idempotent, both backends).

        Thread backend: joins the fan-out pool.  Process backend: drains and
        joins every worker, escalating to terminate/kill — deterministic
        even when called during interpreter shutdown (the workers are
        additionally daemonic and the supervisor registers an ``atexit``
        finaliser, so no backend can outlive or hang the interpreter).
        """
        backend = getattr(self, "_backend", None)
        if backend is not None:
            backend.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- updates ---------------------------------------------------------------

    def update(self, now_s: float) -> ConstellationState:
        """Run one constellation update and distribute it to all hosts.

        The first epoch (and every epoch when ``incremental`` is off) runs
        the full-replay path; afterwards the differential pipeline computes
        state + diff, shards the diff by host and fans the slices out
        concurrently.
        """
        started = wallclock.perf_counter()
        engine = getattr(self.calculation, "path_engine", None)
        engine_before = engine.stats.snapshot() if engine is not None else {}
        previous = self.database.state if self.database.has_state else None
        if previous is None or not self.incremental:
            state = self.calculation.state_at(now_s)
            diff = None
        else:
            state, diff = self.calculation.diff_since(previous, now_s)
        if engine is not None:
            self.stats.record_path_engine(engine_before, engine.stats.snapshot())
        self.database.set_state(state, diff=diff)
        if diff is None:
            self._ensure_active_satellites(state, now_s)
            started_fanout = wallclock.perf_counter()
            self._backend.apply_full_state(state, now_s)
            self.stats.fanout_seconds.append(wallclock.perf_counter() - started_fanout)
            if self.network is not None:
                self.network.mark_updated()
            self.stats.full_updates += 1
        else:
            self._ensure_activated_satellites(diff, now_s)
            self._fan_out(self._shard(state, diff), now_s)
            if self.network is not None:
                self.network.apply_diff(diff)
            self.stats.diff_updates += 1
            self.stats.diff_change_counts.append(diff.topology.change_count)
        self.stats.count += 1
        self.stats.wallclock_seconds.append(wallclock.perf_counter() - started)
        self._merge_transport_latencies()
        return state

    def run_updates(self, sim: Simulation, duration_s: Optional[float] = None):
        """Simulation process running updates at the configured interval."""
        end = duration_s if duration_s is not None else self.config.duration_s
        while True:
            self.update(sim.now)
            next_update = sim.now + self.config.update_interval_s
            if next_update > end:
                return
            yield sim.timeout(self.config.update_interval_s)
