"""The Celestial coordinator.

The coordinator computes satellite orbital paths and networking
characteristics and sends this information to the Celestial hosts, which
update machines and network links accordingly (§3, Fig. 2).  In this
reproduction the coordinator additionally creates microVMs lazily: a
satellite server is instantiated on a host the first time it enters the
bounding box, mirroring how Celestial only expends host resources on
emulated (in-box) satellites.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import Configuration
from repro.core.constellation import ConstellationCalculation, ConstellationState, MachineId
from repro.core.database import ConstellationDatabase
from repro.core.machine_manager import MachineManager
from repro.net.network import VirtualNetwork
from repro.sim import Simulation


@dataclass
class UpdateStats:
    """Bookkeeping about coordinator updates (used by the <1 s update claim)."""

    count: int = 0
    wallclock_seconds: list[float] = field(default_factory=list)

    @property
    def mean_wallclock_s(self) -> float:
        """Mean wall-clock duration of one constellation update."""
        if not self.wallclock_seconds:
            return 0.0
        return sum(self.wallclock_seconds) / len(self.wallclock_seconds)

    @property
    def max_wallclock_s(self) -> float:
        """Longest wall-clock duration of one constellation update."""
        return max(self.wallclock_seconds, default=0.0)


class Coordinator:
    """Drives periodic constellation updates and distributes them to hosts."""

    def __init__(
        self,
        config: Configuration,
        calculation: ConstellationCalculation,
        database: ConstellationDatabase,
        managers: list[MachineManager],
        network: Optional[VirtualNetwork] = None,
    ):
        self.config = config
        self.calculation = calculation
        self.database = database
        self.managers = managers
        self.network = network
        self.stats = UpdateStats()
        self._machine_manager_of: dict[str, MachineManager] = {}

    # -- machine bookkeeping -------------------------------------------------

    def manager_for(self, machine: MachineId) -> MachineManager:
        """The machine manager hosting a machine."""
        if machine.name not in self._machine_manager_of:
            raise KeyError(f"machine {machine.name!r} has not been created")
        return self._machine_manager_of[machine.name]

    def has_machine(self, machine: MachineId) -> bool:
        """Whether a microVM exists for the machine."""
        return machine.name in self._machine_manager_of

    def _least_loaded_manager(self) -> MachineManager:
        return min(
            self.managers,
            key=lambda manager: manager.host.reserved_memory_mib(),
        )

    def create_machine(
        self, machine: MachineId, now_s: float, boot: bool = True
    ) -> MachineManager:
        """Create (and optionally boot) a microVM for a machine."""
        if self.has_machine(machine):
            return self.manager_for(machine)
        if machine.is_ground_station:
            compute = self.config.ground_station_config(machine.name).compute
        else:
            compute = self.config.shells[machine.shell].compute
        manager = self._least_loaded_manager()
        manager.create_machine(machine, compute)
        if boot:
            manager.boot(machine, now_s)
        self._machine_manager_of[machine.name] = manager
        return manager

    def create_ground_stations(self, now_s: float) -> None:
        """Create and boot the microVMs of all configured ground stations."""
        for name in self.config.ground_station_names:
            self.create_machine(self.calculation.ground_station(name), now_s)

    def _ensure_active_satellites(self, state: ConstellationState, now_s: float) -> None:
        for shell_index, active in state.active_satellites.items():
            for identifier in active.nonzero()[0]:
                machine = self.calculation.satellite(shell_index, int(identifier))
                if not self.has_machine(machine):
                    self.create_machine(machine, now_s)

    # -- updates ---------------------------------------------------------------

    def update(self, now_s: float) -> ConstellationState:
        """Run one constellation update and distribute it to all hosts."""
        started = wallclock.perf_counter()
        state = self.calculation.state_at(now_s)
        self.database.set_state(state)
        self._ensure_active_satellites(state, now_s)
        for manager in self.managers:
            manager.apply_state(state, now_s)
        if self.network is not None:
            self.network.mark_updated()
        self.stats.count += 1
        self.stats.wallclock_seconds.append(wallclock.perf_counter() - started)
        return state

    def run_updates(self, sim: Simulation, duration_s: Optional[float] = None):
        """Simulation process running updates at the configured interval."""
        end = duration_s if duration_s is not None else self.config.duration_s
        while True:
            self.update(sim.now)
            next_update = sim.now + self.config.update_interval_s
            if next_update > end:
                return
            yield sim.timeout(self.config.update_interval_s)
