"""Virtual network address calculation for emulated machines.

Every microVM receives a deterministic IPv4 address derived from its identity
so that hosts can set up routing without coordination.  Applications normally
use the DNS names (``<id>.<shell>.celestial``) instead of computing addresses
themselves (§3.2); this module provides the underlying scheme.

Scheme (documented, Celestial-inspired): all machines live in ``10.0.0.0/8``.
Each machine owns a /30 block whose index is its global machine offset:
satellites are numbered shell by shell, ground stations come after all
satellites.  Within the block, ``.1`` is the host-side gateway and ``.2`` is
the machine address.
"""

from __future__ import annotations

import ipaddress
from typing import Sequence

_BASE = int(ipaddress.IPv4Address("10.0.0.0"))
_MAX_MACHINES = 2**22  # 4 addresses per machine inside 10.0.0.0/8


def _offset(shell_sizes: Sequence[int], shell: int, identifier: int) -> int:
    if shell < 0 or shell > len(shell_sizes):
        raise IndexError(f"shell {shell} out of range")
    if shell < len(shell_sizes) and not 0 <= identifier < shell_sizes[shell]:
        raise IndexError(f"identifier {identifier} out of range for shell {shell}")
    offset = sum(shell_sizes[:shell]) + identifier
    if offset >= _MAX_MACHINES:
        raise ValueError("machine offset exceeds the 10.0.0.0/8 address space")
    return offset


def network_for(shell_sizes: Sequence[int], shell: int, identifier: int) -> ipaddress.IPv4Network:
    """The /30 network block owned by a machine."""
    offset = _offset(shell_sizes, shell, identifier)
    return ipaddress.IPv4Network((_BASE + offset * 4, 30))


def machine_ip(shell_sizes: Sequence[int], shell: int, identifier: int) -> ipaddress.IPv4Address:
    """The machine-side address of a microVM."""
    return network_for(shell_sizes, shell, identifier)[2]


def gateway_ip(shell_sizes: Sequence[int], shell: int, identifier: int) -> ipaddress.IPv4Address:
    """The host-side (gateway/TAP) address of a microVM."""
    return network_for(shell_sizes, shell, identifier)[1]


def parse_machine_ip(
    shell_sizes: Sequence[int], address: ipaddress.IPv4Address | str
) -> tuple[int, int]:
    """Invert :func:`machine_ip`: return (shell, identifier) for an address."""
    address = ipaddress.IPv4Address(address)
    offset, remainder = divmod(int(address) - _BASE, 4)
    if remainder != 2 or offset < 0:
        raise ValueError(f"{address} is not a machine address")
    cumulative = 0
    for shell, size in enumerate(shell_sizes):
        if offset < cumulative + size:
            return shell, offset - cumulative
        cumulative += size
    # Ground stations are addressed as a virtual shell after all satellite shells.
    return len(shell_sizes), offset - cumulative
