"""The Constellation Calculation component.

This is the heart of Celestial (§3.1): it periodically updates the state of
the satellite network — positions of satellites and ground stations, network
link distances and delays, and shortest paths between nodes — based on the
SILLEO-SCNS approach extended with SGP4 support.  The resulting machine and
network parameters are handed to the Machine Managers without modification.

The snapshot hot path is fully vectorised: static structures (the node
index, per-shell +GRID ISL endpoint arrays as flat global node indices, and
ground-station nodes/positions) are computed once in
:class:`ConstellationCalculation` and reused across consecutive snapshots,
and each :meth:`ConstellationCalculation.state_at` call builds the
array-backed :class:`~repro.topology.graph.NetworkGraph` from a handful of
bulk array appends (one per shell for ISLs, one per ground-station/shell
pair for uplinks) instead of a Python loop over individual links.
Ground-station elevation checks are batched into one matrix operation per
shell over the stacked GST×satellite position array
(:func:`~repro.topology.uplinks.visible_satellites_batch`).

Differential updates
--------------------

:meth:`ConstellationCalculation.diff_since` is the epoch-to-epoch fast
path.  Both it and :meth:`ConstellationCalculation.state_at` derive their
link set from the same internal per-epoch arrays, so the states they
produce are byte-identical; the diff path additionally

* assembles the graph directly from the concatenated edge arrays
  (:meth:`~repro.topology.graph.NetworkGraph.from_edge_arrays`), sharing
  the previous epoch's sorted-key/adjacency/CSR caches whenever the edge
  set did not change structurally (the steady-state case), and
* emits a :class:`ConstellationDiff` — the
  :class:`~repro.topology.graph.TopologyDiff` edge index arrays plus the
  per-shell bounding-box ``activated``/``deactivated`` satellite ids —
  which the coordinator shards into per-host slices instead of replaying
  the full state to every machine manager, and
* advances the shortest-path tables through the incremental
  :class:`~repro.topology.paths.PathEngine` instead of re-solving from
  scratch: the previous epoch's distance/predecessor trees are carried
  across the diff (reused verbatim on empty diffs, repaired where the
  diff touched them, re-solved per source only where routes genuinely
  rewired), including any lazily created satellite-to-satellite tables.
  Engine output is byte-identical to a cold solve by construction.

The bounding-box activity test runs on the certified geocentric-latitude
bound (:meth:`~repro.core.bounding_box.BoundingBox.contains_ecef`), so the
full per-shell geodetic conversion is only computed for satellites inside
the margin band of a box latitude edge; the exact sub-satellite
latitudes/longitudes a consumer may still ask for are derived lazily per
shell and cached on the state.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Iterator, Literal, Optional, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.orbits import Shell, constants
from repro.orbits.coordinates import ecef_to_geodetic, eci_to_ecef
from repro.orbits.visibility import (
    elevation_angle_deg,
    elevation_angle_matrix_deg,
    isl_closest_approach_km,
    slant_range_km,
)
from repro.topology import (
    LinkType,
    NetworkGraph,
    NodeIndex,
    PathEngine,
    ShortestPaths,
    TopologyDiff,
)
from repro.topology.graph import _CODE_BY_LINK_TYPE
from repro.topology.isl import grid_plus_isl_pairs
from repro.topology.linkparams import link_delay_ms
from repro.topology.uplinks import visible_satellites_batch


def satellite_name(shell: int, identifier: int) -> str:
    """Canonical DNS-style name of a satellite server.

    The single source of the naming rule: machine creation, the info API
    and the distribution runtime's wire codec (which rebuilds identities
    from ``(shell, identifier)`` pairs) all derive names from here.
    """
    return f"{identifier}.{shell}.celestial"


@dataclass(frozen=True)
class MachineId:
    """Identity of one emulated machine (satellite or ground station)."""

    shell: int
    identifier: int
    name: str

    GROUND_SHELL = -1

    @property
    def is_ground_station(self) -> bool:
        """Whether this machine is a ground station."""
        return self.shell == self.GROUND_SHELL

    @property
    def is_satellite(self) -> bool:
        """Whether this machine is a satellite server."""
        return not self.is_ground_station


@dataclass(frozen=True)
class UplinkInfo:
    """One usable ground-to-satellite link."""

    shell: int
    satellite: int
    distance_km: float
    delay_ms: float


@dataclass(frozen=True)
class ConstellationDiff:
    """What changed between two consecutive constellation epochs.

    This is the unit of distribution of the differential update protocol:
    the coordinator computes one per epoch via
    :meth:`ConstellationCalculation.diff_since`, stores it in the rolling
    history of the constellation database, shards it into per-host slices
    for the machine managers and hands it to the virtual network.

    ``topology`` carries the edge-level changes (see
    :class:`~repro.topology.graph.TopologyDiff`); ``activated`` and
    ``deactivated`` hold, per shell, the satellite identifiers that entered
    or left the bounding box since the previous epoch — the only machines a
    manager has to suspend or resume.
    """

    previous_time_s: float
    time_s: float
    topology: TopologyDiff
    activated: dict[int, np.ndarray]
    deactivated: dict[int, np.ndarray]

    @property
    def activity_change_count(self) -> int:
        """Number of satellites whose bounding-box activity flipped."""
        return int(
            sum(ids.size for ids in self.activated.values())
            + sum(ids.size for ids in self.deactivated.values())
        )

    @property
    def is_empty(self) -> bool:
        """Whether nothing observable changed between the two epochs."""
        return self.topology.is_empty and self.activity_change_count == 0

    def summary(self) -> dict[str, int]:
        """Compact counters (topology changes plus activity transitions)."""
        counters = self.topology.summary()
        counters["activated"] = int(sum(ids.size for ids in self.activated.values()))
        counters["deactivated"] = int(sum(ids.size for ids in self.deactivated.values()))
        return counters


@dataclass
class _UpdateHints:
    """Certified visibility bounds carried from one epoch to the next.

    ``elevation_bounds`` holds, per shell, a ``(G, N)`` matrix of *upper
    bounds* on each ground-station/satellite elevation angle [deg]:
    entries are exact where the elevation was last computed and grow by a
    certified maximum elevation rate × Δt per epoch otherwise.  A pair whose
    bound stays below the station's minimum elevation provably cannot have
    become visible, so the differential path skips its elevation check.

    ``los_lower``/``los_upper`` bracket, per shell, each candidate ISL's
    closest approach to Earth's centre [km]; the closest-approach function
    is 1-Lipschitz in the endpoint positions, so the interval widens by the
    maximum satellite displacement per epoch.  Only links whose interval
    straddles the atmosphere-grazing limit need an exact recomputation.

    The bounds are conservative: any Δt (including large gaps or stepping
    backwards in time) only widens them, degrading gracefully to the full
    recomputation while never changing a visibility verdict.
    """

    time_s: float
    elevation_bounds: list[np.ndarray]
    los_lower: list[np.ndarray]
    los_upper: list[np.ndarray]


@dataclass
class _EpochArrays:
    """Per-epoch intermediate arrays shared by ``state_at`` and ``diff_since``.

    ``isl_chunks`` holds one ``(node_a, node_b, distance_km, delay_ms,
    bandwidth_kbps)`` tuple per shell (line-of-sight filtered),
    ``uplink_chunks`` one ``(gst_name, shell, gst_node, visible_ids,
    sat_nodes, distance_km, delay_ms, bandwidth_kbps)`` tuple per
    ground-station/shell pair with at least one visible satellite, in the
    deterministic order the links are appended to the graph (ISLs by shell,
    then uplinks by ground station, then shell).  Keeping both code paths on
    these arrays guarantees byte-identical snapshots.
    """

    gmst: float
    satellite_positions: dict[int, np.ndarray]
    active: dict[int, np.ndarray]
    isl_chunks: list[tuple]
    uplink_chunks: list[tuple]
    hints: Optional[_UpdateHints] = None


class _SubSatellitePoints:
    """Lazily computed per-shell sub-satellite geodetic coordinates.

    The epoch hot path only needs latitudes/longitudes where the
    bounding-box verdict is genuinely uncertain
    (:meth:`~repro.core.bounding_box.BoundingBox.contains_ecef`), so the
    full per-shell ``ecef_to_geodetic`` conversion — one of the largest
    remaining terms of ``_epoch_arrays`` — is deferred until a consumer
    (info API, animation, experiments) actually asks for it, then cached.
    The values are identical to an eager conversion: same function over
    the same position arrays.
    """

    def __init__(self, positions: dict[int, np.ndarray]):
        self._positions = positions
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def geodetic(self, shell: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached (latitudes, longitudes) [deg] of one shell's satellites."""
        if shell not in self._cache:
            lat, lon, _ = ecef_to_geodetic(self._positions[shell])
            self._cache[shell] = (lat, lon)
        return self._cache[shell]

    def view(self, component: int) -> "_GeodeticView":
        """Dict-like view of one coordinate (0 = latitude, 1 = longitude)."""
        return _GeodeticView(self, component)


class _GeodeticView(Mapping):
    """Read-only per-shell mapping over one lazily computed coordinate."""

    def __init__(self, points: _SubSatellitePoints, component: int):
        self._points = points
        self._component = component

    def __getitem__(self, shell: int) -> np.ndarray:
        return self._points.geodetic(shell)[self._component]

    def __iter__(self):
        return iter(self._points._positions)

    def __len__(self) -> int:
        return len(self._points._positions)


class _LazyUplinkTable(Mapping):
    """Uplink table whose :class:`UplinkInfo` lists materialise on first use.

    Building the per-ground-station object lists costs a Python loop over
    every visible pair; most epochs nobody reads them (the coordinator's
    slicing works on the raw arrays), so construction is deferred until
    any mapping operation touches the table.  Deliberately a
    :class:`~collections.abc.Mapping` rather than a ``dict`` subclass:
    CPython's concrete-dict C paths (``dict(x)``, ``{**x}``, ``x.copy()``)
    bypass overridden methods on subclasses and would observe an empty
    table, whereas with a Mapping they go through ``__iter__`` /
    ``__getitem__`` and materialise correctly.
    """

    def __init__(self, builder):
        self._table: dict[str, list[UplinkInfo]] = {}
        self._builder = builder

    def _materialize(self) -> dict:
        if self._builder is not None:
            builder, self._builder = self._builder, None
            self._table = builder()
        return self._table

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self):
        return len(self._materialize())

    def __eq__(self, other):
        if isinstance(other, _LazyUplinkTable):
            return self._materialize() == other._materialize()
        if isinstance(other, dict):
            return self._materialize() == other
        return NotImplemented

    __hash__ = None

    def __repr__(self):
        return repr(self._materialize())


def _default_cache_score(hits: float, cost: float) -> float:
    """Default table value: earned hits against measured carry cost."""
    return (hits + 1.0) / (cost + 1.0)


class _ExtraTableScores:
    """Cost-aware value bookkeeping behind the extra-table cache.

    Each cached single-source table is scored by what it earns (recorded
    query hits) against what it costs (measured advance work: ~1 per
    kernel row, ~4 per solver/cold row, folded in from
    ``PathEngine.last_advance_costs``).  The cache evicts the
    lowest-value table first — by default ``value = (hits + 1) /
    (cost + 1)``, replaceable through ``score`` — breaking ties by
    least-recent use, so a hot table survives a flood of one-shot
    queries while a table that is expensive to drag across churn epochs
    and never read is dropped early.  Hits and costs decay geometrically
    by ``decay_factor`` once per epoch so stale popularity fades (0.5
    per epoch by default, i.e. a half-life of one epoch).  Entries of
    evicted tables are dropped outright, keeping the bookkeeping bounded
    by the cache cap.
    """

    __slots__ = ("hits", "costs", "last_used", "_clock", "decay_factor", "score")

    def __init__(self, decay_factor: float = 0.5, score=None):
        if not 0.0 < decay_factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        self.hits: dict[int, float] = {}
        self.costs: dict[int, float] = {}
        self.last_used: dict[int, int] = {}
        self._clock = 0
        self.decay_factor = decay_factor
        self.score = score if score is not None else _default_cache_score

    def _touch(self, node: int) -> None:
        self._clock += 1
        self.last_used[node] = self._clock

    def record_hit(self, node: int) -> None:
        self.hits[node] = self.hits.get(node, 0.0) + 1.0
        self._touch(node)

    def record_insert(self, node: int) -> None:
        self.hits.setdefault(node, 0.0)
        self.costs.setdefault(node, 0.0)
        self._touch(node)

    def record_cost(self, node: int, cost: float) -> None:
        self.costs[node] = self.costs.get(node, 0.0) + cost

    def decay(self) -> None:
        """Geometrically decay hits and costs (once per advanced epoch)."""
        for table in (self.hits, self.costs):
            for node in table:
                table[node] *= self.decay_factor

    def drop(self, node: int) -> None:
        self.hits.pop(node, None)
        self.costs.pop(node, None)
        self.last_used.pop(node, None)

    def rank(self, node: int) -> tuple[float, int]:
        """Sort key: ascending → first to evict (low value, then LRU)."""
        value = self.score(self.hits.get(node, 0.0), self.costs.get(node, 0.0))
        return (value, self.last_used.get(node, 0))


@dataclass
class ConstellationState:
    """Snapshot of the constellation network at one instant."""

    time_s: float
    gmst_rad: float
    node_index: NodeIndex
    graph: NetworkGraph
    paths: ShortestPaths
    satellite_positions_ecef: dict[int, np.ndarray]
    satellite_latitudes: Mapping
    satellite_longitudes: Mapping
    active_satellites: dict[int, np.ndarray]
    ground_positions_ecef: dict[str, np.ndarray]
    uplinks: Mapping = field(default_factory=dict)
    _extra_paths: dict[int, ShortestPaths] = field(default_factory=dict, repr=False)
    _update_hints: Optional[_UpdateHints] = field(default=None, repr=False, compare=False)
    _path_engine: Optional[PathEngine] = field(default=None, repr=False, compare=False)
    #: Effective extra-table cap at this epoch (enforced on insert in
    #: :meth:`_paths_from`; 0 disables caching, None leaves the cache
    #: unbounded for directly constructed states).
    _extra_table_limit: Optional[int] = field(default=None, repr=False, compare=False)
    #: Shared cost-aware score book of the owning calculation.
    _table_scores: Optional[_ExtraTableScores] = field(
        default=None, repr=False, compare=False
    )

    # -- machine-level queries -------------------------------------------

    def _paths_from(self, node_a: int, node_b: int) -> tuple[ShortestPaths, int, int]:
        """Shortest-path table that contains one of the two nodes as a source.

        The main table covers the configured path sources (by default the
        ground stations).  Queries between two satellites — e.g. a state
        migration between satellite servers — fall back to a lazily computed
        and cached single-source table.  The tables are engine-managed:
        created through the constellation's :class:`PathEngine` (so solver
        work is counted) and carried to the next epoch by ``diff_since``,
        where they are repaired incrementally instead of re-solved.

        The cache is bounded at *insert* time: when adding a table would
        exceed the epoch's effective cap (:meth:`ConstellationCalculation.
        _extra_table_cap`), the lowest-value cached table is evicted per
        the cost-aware policy (:class:`_ExtraTableScores`) before the new
        one is kept; a cap of 0 disables caching entirely.  Every lookup
        records a hit or miss, both in the score book (so eviction ranks
        on real usage, not insertion order) and in the engine's
        ``cache_*`` counters (so the behaviour is observable through
        ``path_statistics``).
        """
        if self.paths.has_source(node_a):
            return self.paths, node_a, node_b
        if self.paths.has_source(node_b):
            return self.paths, node_b, node_a
        engine = self._path_engine
        scores = self._table_scores
        table = self._extra_paths.get(node_a)
        if table is not None:
            if engine is not None:
                engine.stats.cache_hits += 1
            if scores is not None:
                scores.record_hit(node_a)
            return table, node_a, node_b
        if engine is not None:
            engine.stats.cache_misses += 1
            table = engine.solve(self.graph, sources=[node_a])
        else:
            table = ShortestPaths(self.graph, sources=[node_a])
        limit = self._extra_table_limit
        if limit == 0:
            return table, node_a, node_b
        self._extra_paths[node_a] = table
        if scores is not None:
            scores.record_insert(node_a)
            scores.record_cost(node_a, 4.0)  # a cold solve ≈ one solver row
        if limit is not None:
            while len(self._extra_paths) > limit:
                candidates = [k for k in self._extra_paths if k != node_a]
                if scores is not None:
                    victim = min(candidates, key=scores.rank)
                    scores.drop(victim)
                else:
                    victim = candidates[0]
                del self._extra_paths[victim]
                if engine is not None:
                    engine.stats.cache_evictions += 1
        return table, node_a, node_b

    def node_for(self, machine: MachineId) -> int:
        """Flat node index of a machine."""
        if machine.is_ground_station:
            return self.node_index.ground_station(machine.name)
        return self.node_index.satellite(machine.shell, machine.identifier)

    def is_active(self, machine: MachineId) -> bool:
        """Whether the machine is inside the bounding box (ground stations always are)."""
        if machine.is_ground_station:
            return True
        return bool(self.active_satellites[machine.shell][machine.identifier])

    def delay_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """One-way shortest-path network delay between two machines [ms]."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        if node_a == node_b:
            return 0.0
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.delay_ms(source, target)

    def rtt_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Round-trip network delay between two machines [ms]."""
        return 2.0 * self.delay_ms(machine_a, machine_b)

    def reachable(self, machine_a: MachineId, machine_b: MachineId) -> bool:
        """Whether a network path exists between the machines."""
        return np.isfinite(self.delay_ms(machine_a, machine_b))

    def path(self, machine_a: MachineId, machine_b: MachineId):
        """Full path (hop node indices) between two machines."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.path(source, target)

    def bandwidth_kbps(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Bottleneck bandwidth along the shortest path [kbps] (0 if unreachable)."""
        result = self.path(machine_a, machine_b)
        if not result.reachable or len(result.hops) < 2:
            return 0.0
        hops = np.asarray(result.hops, dtype=np.int64)
        edges = self.graph.edge_ids_between(hops[:-1], hops[1:])
        edges = edges[edges >= 0]
        if edges.size == 0:
            return 0.0
        return float(self.graph.bandwidths_kbps[edges].min())

    def uplinks_of(self, ground_station: str) -> list[UplinkInfo]:
        """Usable uplinks of a ground station, nearest first."""
        return sorted(self.uplinks.get(ground_station, []), key=lambda u: u.distance_km)

    def satellite_position_geodetic(self, shell: int, identifier: int) -> tuple[float, float]:
        """Sub-satellite latitude/longitude of a satellite [degrees]."""
        return (
            float(self.satellite_latitudes[shell][identifier]),
            float(self.satellite_longitudes[shell][identifier]),
        )

    def active_count(self) -> int:
        """Number of satellites currently inside the bounding box."""
        return int(sum(np.count_nonzero(mask) for mask in self.active_satellites.values()))


class ConstellationCalculation:
    """Computes constellation snapshots for a configuration."""

    def __init__(
        self,
        config: Configuration,
        path_sources: Literal["ground_stations", "all"] = "ground_stations",
        incremental_paths: bool = True,
        cheap_geodetic_box: bool = True,
        eager_uplinks: bool = False,
        max_carried_extra_tables: Optional[int] = None,
        all_pairs: bool = False,
        cache_decay_half_life: float = 1.0,
        cache_score: Optional[Callable[[float, float], float]] = None,
    ):
        self.config = config
        # ``all_pairs=True`` is the serving-tier shape: the main table's
        # source set becomes every node (a superset of every active
        # satellite), and each epoch the whole carried table set — main
        # plus extras — advances through one epoch-batched
        # ``PathEngine.advance_all`` call instead of a per-table loop.
        self.all_pairs = all_pairs
        if all_pairs:
            path_sources = "all"
        self.path_sources = path_sources
        # Cost-aware value book of the extra-table cache, shared with
        # every state this calculation produces (eviction needs history
        # that outlives a single epoch's state object).  The eviction
        # value function is tunable: ``cache_decay_half_life`` (in
        # epochs) sets how fast recorded hits/costs fade, ``cache_score``
        # replaces the default ``(hits + 1) / (cost + 1)`` ranking.  The
        # defaults reproduce the historical behaviour exactly.
        if cache_decay_half_life <= 0:
            raise ValueError("cache decay half-life must be positive")
        self.cache_decay_half_life = cache_decay_half_life
        self.cache_score = cache_score
        self._extra_table_scores = _ExtraTableScores(
            decay_factor=0.5 ** (1.0 / cache_decay_half_life),
            score=cache_score,
        )
        # Cap on lazily created single-source tables carried between
        # epochs (None → the class default); always additionally bounded
        # by EXTRA_TABLE_MEMORY_BUDGET_MB, see :meth:`_extra_table_cap`.
        self.max_carried_extra_tables = (
            max_carried_extra_tables
            if max_carried_extra_tables is not None
            else self.MAX_CARRIED_EXTRA_TABLES
        )
        if self.max_carried_extra_tables < 0:
            raise ValueError("max_carried_extra_tables must be >= 0")
        # ``incremental_paths`` routes ``diff_since`` epochs through the
        # incremental shortest-path engine; ``cheap_geodetic_box`` enables
        # the certified geocentric bound in the bounding-box test;
        # ``eager_uplinks`` builds the per-station uplink tables during the
        # update instead of on first access.  The non-default combinations
        # exist to measure the PR 2 baseline behaviour in the benchmarks
        # (see :meth:`pr2_baseline`), with byte-identical results either
        # way.
        self.incremental_paths = incremental_paths
        self.cheap_geodetic_box = cheap_geodetic_box
        self.eager_uplinks = eager_uplinks
        self.shells: list[Shell] = [
            Shell(
                shell_config.geometry,
                shell_index=index,
                propagator=shell_config.propagator,
            )
            for index, shell_config in enumerate(config.shells)
        ]
        self.node_index = NodeIndex(
            shell_sizes=config.shell_sizes,
            ground_station_names=config.ground_station_names,
        )
        # One engine per calculation: it owns the solver-call counters and
        # advances the main (and any extra single-source) tables across
        # epochs; the tables themselves live on the states, so database
        # keyframes stay valid and any retained state can seed a replay.
        self.path_engine = PathEngine(sources=self._path_sources())
        # Static structures reused across consecutive snapshots: the node
        # index, per-shell +GRID ISL pair arrays (both in-shell and as flat
        # global node indices, split into contiguous endpoint buffers) and
        # the fixed ground-station positions/flat node indices.
        self._isl_pairs = [
            np.array(grid_plus_isl_pairs(shell_config.geometry), dtype=int).reshape(-1, 2)
            for shell_config in config.shells
        ]
        self._isl_endpoints_a = [
            np.ascontiguousarray(pairs[:, 0] + self.node_index.shell_offset(shell))
            for shell, pairs in enumerate(self._isl_pairs)
        ]
        self._isl_endpoints_b = [
            np.ascontiguousarray(pairs[:, 1] + self.node_index.shell_offset(shell))
            for shell, pairs in enumerate(self._isl_pairs)
        ]
        self._ground_positions = {
            gst.name: gst.station.position_ecef for gst in config.ground_stations
        }
        self._ground_nodes = {
            gst.name: self.node_index.ground_station(gst.name)
            for gst in config.ground_stations
        }
        # Name → configuration-order position, so ground_station() is O(1)
        # instead of an O(n) list.index scan per call (hot in
        # create_ground_stations and per-update pair lookups).
        self._ground_station_position = {
            name: position for position, name in enumerate(config.ground_station_names)
        }
        # Stacked ground-station structures for the batched (one matrix op
        # per shell) elevation checks: positions as a (G, 3) array plus the
        # per-shell effective minimum elevations and uplink bandwidths with
        # ground-station overrides applied.
        self._gst_position_stack = (
            np.stack([gst.station.position_ecef for gst in config.ground_stations])
            if config.ground_stations
            else np.empty((0, 3), dtype=float)
        )
        self._gst_min_elevations = [
            np.array(
                [
                    gst.min_elevation_deg
                    if gst.min_elevation_deg is not None
                    else shell_config.network.min_elevation_deg
                    for gst in config.ground_stations
                ],
                dtype=float,
            )
            for shell_config in config.shells
        ]
        self._gst_uplink_bandwidths = [
            [
                gst.uplink_bandwidth_kbps
                if gst.uplink_bandwidth_kbps is not None
                else shell_config.network.uplink_bandwidth_kbps
                for gst in config.ground_stations
            ]
            for shell_config in config.shells
        ]
        # Certified per-shell motion bounds for the differential visibility
        # path (:class:`_UpdateHints`).  In the rotating ECEF frame a
        # satellite moves at most orbital speed + frame rotation at the orbit
        # radius (×1.5 safety); an elevation angle seen from the ground then
        # changes at most speed/range rad/s with range ≥ altitude, and an ISL
        # closest approach (1-Lipschitz in the endpoints) at most speed km/s.
        self._shell_speed_km_s: list[float] = []
        self._elevation_rate_deg_s: list[float] = []
        for shell_config in config.shells:
            geometry = shell_config.geometry
            radius_km = constants.EARTH_RADIUS_KM + geometry.altitude_km
            orbital_km_s = 2.0 * np.pi * radius_km / geometry.period_s
            frame_km_s = 7.2921159e-5 * radius_km  # sidereal rotation rate × radius
            speed = (orbital_km_s + frame_km_s) * 1.5
            self._shell_speed_km_s.append(speed)
            min_range_km = max(geometry.altitude_km - 20.0, 1.0)
            self._elevation_rate_deg_s.append(float(np.degrees(speed / min_range_km)))

    @classmethod
    def pr2_baseline(
        cls,
        config: Configuration,
        path_sources: Literal["ground_stations", "all"] = "ground_stations",
    ) -> "ConstellationCalculation":
        """A calculation emulating the PR 2 update-loop code paths.

        Cold per-epoch shortest-path solves, the full geodetic conversion
        in the bounding-box test and eagerly built uplink tables — the
        baseline the benchmarks measure the incremental engine against.
        Results are byte-identical to the default configuration.
        """
        return cls(
            config,
            path_sources=path_sources,
            incremental_paths=False,
            cheap_geodetic_box=False,
            eager_uplinks=True,
        )

    def cache_parameters(self) -> dict:
        """The effective extra-table cache tuning, for result records.

        Experiment bundles persist this next to the cache counters so a
        run's eviction behaviour is reproducible from its ``result.json``.
        """
        score = self._extra_table_scores.score
        return {
            "decay_half_life_epochs": float(self.cache_decay_half_life),
            "decay_factor": float(self._extra_table_scores.decay_factor),
            "score": getattr(score, "__name__", repr(score)),
            "max_carried_extra_tables": int(self.max_carried_extra_tables),
        }

    # -- machine identities -------------------------------------------------

    def satellite(self, shell: int, identifier: int) -> MachineId:
        """MachineId of a satellite server."""
        if not 0 <= shell < len(self.shells):
            raise IndexError(f"shell {shell} out of range")
        if not 0 <= identifier < len(self.shells[shell]):
            raise IndexError(f"satellite {identifier} out of range for shell {shell}")
        return MachineId(shell, identifier, satellite_name(shell, identifier))

    def ground_station(self, name: str) -> MachineId:
        """MachineId of a ground-station server (O(1) name lookup)."""
        if name not in self._ground_station_position:
            raise ValueError(f"{name!r} is not in list")
        return MachineId(MachineId.GROUND_SHELL, self._ground_station_position[name], name)

    def machines(self) -> Iterator[MachineId]:
        """All machines of the configuration (satellites then ground stations)."""
        for shell_index, shell in enumerate(self.shells):
            for satellite in shell:
                yield self.satellite(shell_index, satellite.identifier)
        for name in self.config.ground_station_names:
            yield self.ground_station(name)

    # -- state computation ----------------------------------------------------

    def _epoch_arrays(
        self, time_s: float, previous: Optional[ConstellationState] = None
    ) -> _EpochArrays:
        """Propagate positions and derive the epoch's link arrays.

        Shared by :meth:`state_at` (full rebuild) and :meth:`diff_since`
        (differential path) so both produce byte-identical link sets.  When
        ``previous`` carries :class:`_UpdateHints`, the line-of-sight and
        elevation checks are restricted to the pairs whose certified bounds
        could have crossed their thresholds since the previous epoch; all
        other pairs provably keep their visibility verdict, and recomputed
        values are bitwise identical to the full evaluation.
        """
        config = self.config
        gmst = config.epoch.gmst_at(time_s)
        hints = previous._update_hints if previous is not None else None
        dt = abs(time_s - hints.time_s) if hints is not None else 0.0

        satellite_positions: dict[int, np.ndarray] = {}
        active: dict[int, np.ndarray] = {}
        isl_chunks: list[tuple] = []
        los_lower: list[np.ndarray] = []
        los_upper: list[np.ndarray] = []

        for shell_index, shell in enumerate(self.shells):
            shell_config = config.shells[shell_index]
            positions_ecef = eci_to_ecef(shell.positions_eci(time_s), gmst)
            satellite_positions[shell_index] = positions_ecef
            if config.bounding_box is None:
                active[shell_index] = np.ones(len(shell), dtype=bool)
            elif self.cheap_geodetic_box:
                # Certified geocentric latitude bound: the full geodetic
                # conversion runs only for satellites within the margin
                # band of a box latitude edge — identical verdicts.
                active[shell_index] = np.asarray(
                    config.bounding_box.contains_ecef(positions_ecef), dtype=bool
                )
            else:
                lat, lon, _ = ecef_to_geodetic(positions_ecef)
                active[shell_index] = np.asarray(
                    config.bounding_box.contains(lat, lon), dtype=bool
                )

            # Inter-satellite links (+GRID) with line-of-sight check, one
            # endpoint/distance/delay array bundle per shell.
            pairs = self._isl_pairs[shell_index]
            if not pairs.size:
                los_lower.append(np.empty(0))
                los_upper.append(np.empty(0))
                continue
            endpoint_a = positions_ecef[pairs[:, 0]]
            endpoint_b = positions_ecef[pairs[:, 1]]
            distances = slant_range_km(endpoint_a, endpoint_b)
            limit = constants.EARTH_RADIUS_KM + (
                shell_config.network.atmosphere_grazing_altitude_km
            )
            if hints is not None:
                step = self._shell_speed_km_s[shell_index] * dt
                lower = hints.los_lower[shell_index] - step
                upper = hints.los_upper[shell_index] + step
                uncertain = (lower < limit) & (upper >= limit)
                if np.any(uncertain):
                    exact = isl_closest_approach_km(
                        endpoint_a[uncertain], endpoint_b[uncertain]
                    )
                    lower[uncertain] = exact
                    upper[uncertain] = exact
            else:
                lower = isl_closest_approach_km(endpoint_a, endpoint_b)
                upper = lower.copy()
            los_lower.append(lower)
            los_upper.append(upper)
            clear = lower >= limit
            distances = distances[clear]
            isl_chunks.append(
                (
                    self._isl_endpoints_a[shell_index][clear],
                    self._isl_endpoints_b[shell_index][clear],
                    distances,
                    link_delay_ms(distances),
                    shell_config.network.isl_bandwidth_kbps,
                )
            )

        # Ground-station visibility: the elevation checks of all ground
        # stations are batched into one stacked GST×satellite matrix
        # operation per shell (or, on the differential path, one flat
        # evaluation over the candidate pairs whose bound reached the
        # threshold).
        station_count = self._gst_position_stack.shape[0]
        elevation_bounds: list[np.ndarray] = []
        per_shell_visibility: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for shell_index in range(len(self.shells)):
            positions = satellite_positions[shell_index]
            if station_count == 0:
                elevation_bounds.append(np.empty((0, positions.shape[0])))
                per_shell_visibility.append([])
                continue
            thresholds = self._gst_min_elevations[shell_index]
            results: list[tuple[np.ndarray, np.ndarray]] = []
            if hints is not None:
                step = self._elevation_rate_deg_s[shell_index] * dt
                bounds = hints.elevation_bounds[shell_index] + step
                rows, cols = np.nonzero(bounds >= thresholds[:, None])
                if rows.size:
                    exact = elevation_angle_deg(
                        self._gst_position_stack[rows], positions[cols]
                    )
                    bounds[rows, cols] = exact
                else:
                    exact = np.empty(0)
                row_starts = np.searchsorted(rows, np.arange(station_count + 1))
                for row in range(station_count):
                    start, stop = row_starts[row], row_starts[row + 1]
                    candidates = cols[start:stop]
                    visible = candidates[exact[start:stop] >= thresholds[row]]
                    ranges = slant_range_km(
                        self._gst_position_stack[row], positions[visible]
                    )
                    results.append((visible, np.atleast_1d(ranges)))
            else:
                bounds = elevation_angle_matrix_deg(self._gst_position_stack, positions)
                results = visible_satellites_batch(
                    self._gst_position_stack,
                    positions,
                    thresholds,
                    elevations_deg=bounds,
                )
            elevation_bounds.append(bounds)
            per_shell_visibility.append(results)

        uplink_chunks: list[tuple] = []
        for gst_position_index, gst_config in enumerate(config.ground_stations):
            gst_node = self._ground_nodes[gst_config.name]
            for shell_index in range(len(self.shells)):
                visible, distances = per_shell_visibility[shell_index][gst_position_index]
                if visible.size == 0:
                    continue
                delays = np.atleast_1d(link_delay_ms(distances))
                uplink_chunks.append(
                    (
                        gst_config.name,
                        shell_index,
                        gst_node,
                        visible,
                        visible + self.node_index.shell_offset(shell_index),
                        distances,
                        delays,
                        self._gst_uplink_bandwidths[shell_index][gst_position_index],
                    )
                )

        return _EpochArrays(
            gmst=gmst,
            satellite_positions=satellite_positions,
            active=active,
            isl_chunks=isl_chunks,
            uplink_chunks=uplink_chunks,
            hints=_UpdateHints(
                time_s=time_s,
                elevation_bounds=elevation_bounds,
                los_lower=los_lower,
                los_upper=los_upper,
            ),
        )

    def _uplink_table(self, epoch: _EpochArrays) -> "_LazyUplinkTable":
        def build() -> dict[str, list[UplinkInfo]]:
            uplinks: dict[str, list[UplinkInfo]] = {
                name: [] for name in self.config.ground_station_names
            }
            for name, shell_index, _, visible, _, distances, delays, _ in epoch.uplink_chunks:
                uplinks[name].extend(
                    UplinkInfo(shell_index, satellite, distance, delay)
                    for satellite, distance, delay in zip(
                        visible.tolist(), distances.tolist(), delays.tolist()
                    )
                )
            return uplinks

        return _LazyUplinkTable(build)

    #: Default cap on lazily created single-source tables carried between
    #: epochs.  The bounded regional re-solve kernel makes advancing an
    #: extra table cost region-sized work instead of a cold row, so the
    #: default is sized for all-satellites-as-sources workloads rather
    #: than the handful the per-source ``csgraph`` fallback could afford.
    MAX_CARRIED_EXTRA_TABLES = 256

    #: Memory budget for carried extra tables.  Each single-source table
    #: holds a distance row (float64), a predecessor row (int32), a
    #: node-indexed tree-edge row (int64) and an edge-membership row
    #: (bool per link), so the per-table footprint scales with the node
    #: and link counts; the effective cap shrinks on very large graphs
    #: so carried tables never dominate the epoch state.
    EXTRA_TABLE_MEMORY_BUDGET_MB = 64

    def _extra_table_cap(self, graph: NetworkGraph) -> int:
        """Effective carry cap: the configured cap, memory-bounded."""
        node_count = len(graph.index)
        per_table_bytes = node_count * 20 + graph.total_links()
        budget_bytes = self.EXTRA_TABLE_MEMORY_BUDGET_MB * 1024 * 1024
        memory_cap = max(32, budget_bytes // max(per_table_bytes, 1))
        return int(min(self.max_carried_extra_tables, memory_cap))

    def _select_carry(
        self, tables: dict[int, ShortestPaths], cap: int
    ) -> list[tuple[int, ShortestPaths]]:
        """Pick which cached extra tables to carry into the next epoch.

        Keeps the ``cap`` highest-value tables per the cost-aware policy
        (:class:`_ExtraTableScores`), preserving their insertion order;
        dropped tables count as evictions and lose their score entries.
        With no recorded hits or costs the ranking degenerates to
        least-recently-inserted-first — recency, not FIFO position.
        """
        scores = self._extra_table_scores
        excess = len(tables) - cap
        if excess <= 0:
            return list(tables.items())
        victims = set(sorted(tables, key=scores.rank)[:excess])
        for node in victims:
            scores.drop(node)
        self.path_engine.stats.cache_evictions += len(victims)
        return [(node, table) for node, table in tables.items() if node not in victims]

    def _state_from_epoch(
        self,
        time_s: float,
        epoch: _EpochArrays,
        graph: NetworkGraph,
        path_method: Literal["dijkstra", "floyd-warshall"],
        previous: Optional[ConstellationState] = None,
        topology: Optional[TopologyDiff] = None,
    ) -> ConstellationState:
        extra_paths: dict[int, ShortestPaths] = {}
        cap: Optional[int] = None
        if path_method != "dijkstra":
            # The engine only advances Dijkstra tables; other methods stay
            # on the cold per-epoch solve.
            paths = ShortestPaths(graph, sources=self._path_sources(), method=path_method)
            engine = None
        else:
            engine = self.path_engine
            cap = self._extra_table_cap(graph)
            if (
                self.incremental_paths
                and previous is not None
                and topology is not None
                and previous.paths.method == "dijkstra"
            ):
                # Satellite-to-satellite query tables ride the same repair
                # pipeline instead of being re-solved from scratch: the
                # main table and every carried extra advance through ONE
                # epoch-batched call, so the per-epoch fixed costs and the
                # kernel invocation are shared across the whole set.
                scores = self._extra_table_scores
                scores.decay()
                carried = self._select_carry(previous._extra_paths, cap)
                advanced = engine.advance_all(
                    [previous.paths, *(table for _, table in carried)],
                    graph,
                    topology,
                )
                paths = advanced[0]
                costs = engine.last_advance_costs
                for (node, _), table, cost in zip(carried, advanced[1:], costs[1:]):
                    extra_paths[node] = table
                    scores.record_cost(node, cost)
            else:
                paths = engine.solve(graph)
        points = _SubSatellitePoints(epoch.satellite_positions)
        uplinks = self._uplink_table(epoch)
        if self.eager_uplinks:
            uplinks._materialize()
        return ConstellationState(
            time_s=time_s,
            gmst_rad=epoch.gmst,
            node_index=self.node_index,
            graph=graph,
            paths=paths,
            satellite_positions_ecef=epoch.satellite_positions,
            satellite_latitudes=points.view(0),
            satellite_longitudes=points.view(1),
            active_satellites=epoch.active,
            ground_positions_ecef=dict(self._ground_positions),
            uplinks=uplinks,
            _extra_paths=extra_paths,
            _update_hints=epoch.hints,
            _path_engine=engine,
            _extra_table_limit=cap,
            _table_scores=self._extra_table_scores if engine is not None else None,
        )

    def state_at(
        self, time_s: float, path_method: Literal["dijkstra", "floyd-warshall"] = "dijkstra"
    ) -> ConstellationState:
        """Compute the full constellation state at a simulation time.

        This is the full-rebuild reference path: the graph is reconstructed
        from scratch through the bulk-append/deduplicate machinery.  Use
        :meth:`diff_since` to advance from a previous epoch instead.
        """
        epoch = self._epoch_arrays(time_s)
        graph = NetworkGraph(self.node_index)
        for nodes_a, nodes_b, distances, delays, bandwidth in epoch.isl_chunks:
            graph.add_links(nodes_a, nodes_b, distances, delays, bandwidth, LinkType.ISL)
        for _, _, gst_node, _, sat_nodes, distances, delays, bandwidth in epoch.uplink_chunks:
            graph.add_links(
                np.full(sat_nodes.size, gst_node, dtype=np.int64),
                sat_nodes,
                distances,
                delays,
                bandwidth,
                LinkType.UPLINK,
            )
        return self._state_from_epoch(time_s, epoch, graph, path_method)

    def diff_since(
        self,
        previous: ConstellationState,
        time_s: float,
        path_method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
    ) -> tuple[ConstellationState, ConstellationDiff]:
        """Advance from a previous epoch, reusing its arrays where possible.

        Returns the new state — byte-identical to what :meth:`state_at`
        would compute for ``time_s`` — together with the
        :class:`ConstellationDiff` describing everything that changed since
        ``previous``.  The new graph is assembled directly from the
        concatenated epoch arrays; in the steady-state case (no links
        appeared or disappeared) the previous graph's sorted keys, CSR
        adjacency and delay-matrix structure are shared rather than rebuilt,
        and the emitted diff aligns edge ids 1:1 without any set
        intersection.
        """
        if previous.node_index is not self.node_index:
            raise ValueError("previous state belongs to a different calculation")
        epoch = self._epoch_arrays(time_s, previous)

        # Assemble the flat edge arrays in the exact order state_at appends
        # them (ISLs by shell, then uplinks by ground station and shell), so
        # insertion order — and therefore edge ids — match the full rebuild.
        isl_code = _CODE_BY_LINK_TYPE[LinkType.ISL]
        uplink_code = _CODE_BY_LINK_TYPE[LinkType.UPLINK]
        nodes_a, nodes_b, distances_km, delays_ms, bandwidths, type_codes = (
            [], [], [], [], [], []
        )
        for chunk_a, chunk_b, distances, delays, bandwidth in epoch.isl_chunks:
            nodes_a.append(chunk_a)
            nodes_b.append(chunk_b)
            distances_km.append(distances)
            delays_ms.append(delays)
            bandwidths.append(np.full(chunk_a.size, bandwidth, dtype=np.float64))
            type_codes.append(np.full(chunk_a.size, isl_code, dtype=np.int8))
        for _, _, gst_node, _, sat_nodes, distances, delays, bandwidth in epoch.uplink_chunks:
            nodes_a.append(np.full(sat_nodes.size, gst_node, dtype=np.int64))
            nodes_b.append(sat_nodes)
            distances_km.append(distances)
            delays_ms.append(delays)
            bandwidths.append(np.full(sat_nodes.size, bandwidth, dtype=np.float64))
            type_codes.append(np.full(sat_nodes.size, uplink_code, dtype=np.int8))

        def _concat(chunks: list, dtype) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(chunks)

        graph = NetworkGraph.from_edge_arrays(
            self.node_index,
            _concat(nodes_a, np.int64),
            _concat(nodes_b, np.int64),
            _concat(distances_km, np.float64),
            _concat(delays_ms, np.float64),
            _concat(bandwidths, np.float64),
            _concat(type_codes, np.int8),
            structure_from=previous.graph,
        )
        topology = graph.diff_from(previous.graph)

        activated: dict[int, np.ndarray] = {}
        deactivated: dict[int, np.ndarray] = {}
        for shell_index, now_active in epoch.active.items():
            was_active = previous.active_satellites[shell_index]
            activated[shell_index] = np.nonzero(now_active & ~was_active)[0]
            deactivated[shell_index] = np.nonzero(~now_active & was_active)[0]

        state = self._state_from_epoch(
            time_s, epoch, graph, path_method, previous=previous, topology=topology
        )
        diff = ConstellationDiff(
            previous_time_s=previous.time_s,
            time_s=time_s,
            topology=topology,
            activated=activated,
            deactivated=deactivated,
        )
        return state, diff

    def _path_sources(self) -> Optional[Sequence[int]]:
        if self.path_sources == "all":
            return None
        sources = list(self.node_index.ground_station_indices())
        # Without ground stations fall back to all-pairs so queries still work.
        return sources if sources else None
