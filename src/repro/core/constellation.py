"""The Constellation Calculation component.

This is the heart of Celestial (§3.1): it periodically updates the state of
the satellite network — positions of satellites and ground stations, network
link distances and delays, and shortest paths between nodes — based on the
SILLEO-SCNS approach extended with SGP4 support.  The resulting machine and
network parameters are handed to the Machine Managers without modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.orbits import Shell
from repro.orbits.coordinates import ecef_to_geodetic, eci_to_ecef
from repro.orbits.visibility import elevation_angle_deg, isl_line_of_sight
from repro.topology import Link, LinkType, NetworkGraph, NodeIndex, ShortestPaths
from repro.topology.isl import grid_plus_isl_pairs
from repro.topology.linkparams import link_delay_ms


@dataclass(frozen=True)
class MachineId:
    """Identity of one emulated machine (satellite or ground station)."""

    shell: int
    identifier: int
    name: str

    GROUND_SHELL = -1

    @property
    def is_ground_station(self) -> bool:
        """Whether this machine is a ground station."""
        return self.shell == self.GROUND_SHELL

    @property
    def is_satellite(self) -> bool:
        """Whether this machine is a satellite server."""
        return not self.is_ground_station


@dataclass(frozen=True)
class UplinkInfo:
    """One usable ground-to-satellite link."""

    shell: int
    satellite: int
    distance_km: float
    delay_ms: float


@dataclass
class ConstellationState:
    """Snapshot of the constellation network at one instant."""

    time_s: float
    gmst_rad: float
    node_index: NodeIndex
    graph: NetworkGraph
    paths: ShortestPaths
    satellite_positions_ecef: dict[int, np.ndarray]
    satellite_latitudes: dict[int, np.ndarray]
    satellite_longitudes: dict[int, np.ndarray]
    active_satellites: dict[int, np.ndarray]
    ground_positions_ecef: dict[str, np.ndarray]
    uplinks: dict[str, list[UplinkInfo]] = field(default_factory=dict)
    _extra_paths: dict[int, ShortestPaths] = field(default_factory=dict, repr=False)

    # -- machine-level queries -------------------------------------------

    def _paths_from(self, node_a: int, node_b: int) -> tuple[ShortestPaths, int, int]:
        """Shortest-path table that contains one of the two nodes as a source.

        The main table covers the configured path sources (by default the
        ground stations).  Queries between two satellites — e.g. a state
        migration between satellite servers — fall back to a lazily computed
        and cached single-source Dijkstra run.
        """
        if self.paths.has_source(node_a):
            return self.paths, node_a, node_b
        if self.paths.has_source(node_b):
            return self.paths, node_b, node_a
        if node_a not in self._extra_paths:
            self._extra_paths[node_a] = ShortestPaths(self.graph, sources=[node_a])
        return self._extra_paths[node_a], node_a, node_b

    def node_for(self, machine: MachineId) -> int:
        """Flat node index of a machine."""
        if machine.is_ground_station:
            return self.node_index.ground_station(machine.name)
        return self.node_index.satellite(machine.shell, machine.identifier)

    def is_active(self, machine: MachineId) -> bool:
        """Whether the machine is inside the bounding box (ground stations always are)."""
        if machine.is_ground_station:
            return True
        return bool(self.active_satellites[machine.shell][machine.identifier])

    def delay_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """One-way shortest-path network delay between two machines [ms]."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        if node_a == node_b:
            return 0.0
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.delay_ms(source, target)

    def rtt_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Round-trip network delay between two machines [ms]."""
        return 2.0 * self.delay_ms(machine_a, machine_b)

    def reachable(self, machine_a: MachineId, machine_b: MachineId) -> bool:
        """Whether a network path exists between the machines."""
        return np.isfinite(self.delay_ms(machine_a, machine_b))

    def path(self, machine_a: MachineId, machine_b: MachineId):
        """Full path (hop node indices) between two machines."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.path(source, target)

    def bandwidth_kbps(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Bottleneck bandwidth along the shortest path [kbps] (0 if unreachable)."""
        result = self.path(machine_a, machine_b)
        if not result.reachable or len(result.hops) < 2:
            return 0.0
        bandwidths = []
        for hop_a, hop_b in zip(result.hops, result.hops[1:]):
            link = self.graph.link_between(hop_a, hop_b)
            if link is not None:
                bandwidths.append(link.bandwidth_kbps)
        return min(bandwidths) if bandwidths else 0.0

    def uplinks_of(self, ground_station: str) -> list[UplinkInfo]:
        """Usable uplinks of a ground station, nearest first."""
        return sorted(self.uplinks.get(ground_station, []), key=lambda u: u.distance_km)

    def satellite_position_geodetic(self, shell: int, identifier: int) -> tuple[float, float]:
        """Sub-satellite latitude/longitude of a satellite [degrees]."""
        return (
            float(self.satellite_latitudes[shell][identifier]),
            float(self.satellite_longitudes[shell][identifier]),
        )

    def active_count(self) -> int:
        """Number of satellites currently inside the bounding box."""
        return int(sum(np.count_nonzero(mask) for mask in self.active_satellites.values()))


class ConstellationCalculation:
    """Computes constellation snapshots for a configuration."""

    def __init__(
        self,
        config: Configuration,
        path_sources: Literal["ground_stations", "all"] = "ground_stations",
    ):
        self.config = config
        self.path_sources = path_sources
        self.shells: list[Shell] = [
            Shell(
                shell_config.geometry,
                shell_index=index,
                propagator=shell_config.propagator,
            )
            for index, shell_config in enumerate(config.shells)
        ]
        self.node_index = NodeIndex(
            shell_sizes=config.shell_sizes,
            ground_station_names=config.ground_station_names,
        )
        self._isl_pairs = [
            np.array(grid_plus_isl_pairs(shell_config.geometry), dtype=int).reshape(-1, 2)
            for shell_config in config.shells
        ]
        self._ground_positions = {
            gst.name: gst.station.position_ecef for gst in config.ground_stations
        }

    # -- machine identities -------------------------------------------------

    def satellite(self, shell: int, identifier: int) -> MachineId:
        """MachineId of a satellite server."""
        if not 0 <= shell < len(self.shells):
            raise IndexError(f"shell {shell} out of range")
        if not 0 <= identifier < len(self.shells[shell]):
            raise IndexError(f"satellite {identifier} out of range for shell {shell}")
        return MachineId(shell, identifier, f"{identifier}.{shell}.celestial")

    def ground_station(self, name: str) -> MachineId:
        """MachineId of a ground-station server."""
        position = self.config.ground_station_names.index(name)
        return MachineId(MachineId.GROUND_SHELL, position, name)

    def machines(self) -> Iterator[MachineId]:
        """All machines of the configuration (satellites then ground stations)."""
        for shell_index, shell in enumerate(self.shells):
            for satellite in shell:
                yield self.satellite(shell_index, satellite.identifier)
        for name in self.config.ground_station_names:
            yield self.ground_station(name)

    # -- state computation ----------------------------------------------------

    def state_at(
        self, time_s: float, path_method: Literal["dijkstra", "floyd-warshall"] = "dijkstra"
    ) -> ConstellationState:
        """Compute the full constellation state at a simulation time."""
        config = self.config
        gmst = config.epoch.gmst_at(time_s)
        graph = NetworkGraph(self.node_index)

        satellite_positions: dict[int, np.ndarray] = {}
        latitudes: dict[int, np.ndarray] = {}
        longitudes: dict[int, np.ndarray] = {}
        active: dict[int, np.ndarray] = {}

        for shell_index, shell in enumerate(self.shells):
            shell_config = config.shells[shell_index]
            positions_ecef = eci_to_ecef(shell.positions_eci(time_s), gmst)
            satellite_positions[shell_index] = positions_ecef
            lat, lon, _ = ecef_to_geodetic(positions_ecef)
            latitudes[shell_index] = lat
            longitudes[shell_index] = lon
            if config.bounding_box is None:
                active[shell_index] = np.ones(len(shell), dtype=bool)
            else:
                active[shell_index] = np.asarray(
                    config.bounding_box.contains(lat, lon), dtype=bool
                )

            # Inter-satellite links (+GRID) with line-of-sight check.
            pairs = self._isl_pairs[shell_index]
            if pairs.size:
                endpoint_a = positions_ecef[pairs[:, 0]]
                endpoint_b = positions_ecef[pairs[:, 1]]
                distances = np.linalg.norm(endpoint_a - endpoint_b, axis=1)
                clear = isl_line_of_sight(
                    endpoint_a,
                    endpoint_b,
                    shell_config.network.atmosphere_grazing_altitude_km,
                )
                delays = link_delay_ms(distances)
                for (sat_a, sat_b), distance, delay, visible in zip(
                    pairs, distances, delays, clear
                ):
                    if not visible:
                        continue
                    graph.add_link(
                        Link(
                            node_a=self.node_index.satellite(shell_index, int(sat_a)),
                            node_b=self.node_index.satellite(shell_index, int(sat_b)),
                            distance_km=float(distance),
                            delay_ms=float(delay),
                            bandwidth_kbps=shell_config.network.isl_bandwidth_kbps,
                            link_type=LinkType.ISL,
                        )
                    )

        # Ground-station uplinks.
        uplinks: dict[str, list[UplinkInfo]] = {name: [] for name in config.ground_station_names}
        for gst_config in config.ground_stations:
            gst_position = self._ground_positions[gst_config.name]
            gst_node = self.node_index.ground_station(gst_config.name)
            for shell_index, shell_config in enumerate(config.shells):
                min_elevation = (
                    gst_config.min_elevation_deg
                    if gst_config.min_elevation_deg is not None
                    else shell_config.network.min_elevation_deg
                )
                positions = satellite_positions[shell_index]
                elevations = elevation_angle_deg(gst_position, positions)
                visible = np.nonzero(elevations >= min_elevation)[0]
                if visible.size == 0:
                    continue
                distances = np.linalg.norm(positions[visible] - gst_position, axis=1)
                delays = link_delay_ms(distances)
                bandwidth = (
                    gst_config.uplink_bandwidth_kbps
                    if gst_config.uplink_bandwidth_kbps is not None
                    else shell_config.network.uplink_bandwidth_kbps
                )
                for satellite, distance, delay in zip(visible, distances, np.atleast_1d(delays)):
                    graph.add_link(
                        Link(
                            node_a=gst_node,
                            node_b=self.node_index.satellite(shell_index, int(satellite)),
                            distance_km=float(distance),
                            delay_ms=float(delay),
                            bandwidth_kbps=bandwidth,
                            link_type=LinkType.UPLINK,
                        )
                    )
                    uplinks[gst_config.name].append(
                        UplinkInfo(
                            shell=shell_index,
                            satellite=int(satellite),
                            distance_km=float(distance),
                            delay_ms=float(delay),
                        )
                    )

        sources = self._path_sources()
        paths = ShortestPaths(graph, sources=sources, method=path_method)
        return ConstellationState(
            time_s=time_s,
            gmst_rad=gmst,
            node_index=self.node_index,
            graph=graph,
            paths=paths,
            satellite_positions_ecef=satellite_positions,
            satellite_latitudes=latitudes,
            satellite_longitudes=longitudes,
            active_satellites=active,
            ground_positions_ecef=dict(self._ground_positions),
            uplinks=uplinks,
        )

    def _path_sources(self) -> Optional[Sequence[int]]:
        if self.path_sources == "all":
            return None
        sources = list(self.node_index.ground_station_indices())
        # Without ground stations fall back to all-pairs so queries still work.
        return sources if sources else None
