"""The Constellation Calculation component.

This is the heart of Celestial (§3.1): it periodically updates the state of
the satellite network — positions of satellites and ground stations, network
link distances and delays, and shortest paths between nodes — based on the
SILLEO-SCNS approach extended with SGP4 support.  The resulting machine and
network parameters are handed to the Machine Managers without modification.

The snapshot hot path is fully vectorised: static structures (the node
index, per-shell +GRID ISL endpoint arrays as flat global node indices, and
ground-station nodes/positions) are computed once in
:class:`ConstellationCalculation` and reused across consecutive snapshots,
and each :meth:`ConstellationCalculation.state_at` call builds the
array-backed :class:`~repro.topology.graph.NetworkGraph` from a handful of
bulk array appends (one per shell for ISLs, one per ground-station/shell
pair for uplinks) instead of a Python loop over individual links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.orbits import Shell
from repro.orbits.coordinates import ecef_to_geodetic, eci_to_ecef
from repro.orbits.visibility import isl_line_of_sight, slant_range_km
from repro.topology import LinkType, NetworkGraph, NodeIndex, ShortestPaths
from repro.topology.isl import grid_plus_isl_pairs
from repro.topology.linkparams import link_delay_ms
from repro.topology.uplinks import visible_satellites


@dataclass(frozen=True)
class MachineId:
    """Identity of one emulated machine (satellite or ground station)."""

    shell: int
    identifier: int
    name: str

    GROUND_SHELL = -1

    @property
    def is_ground_station(self) -> bool:
        """Whether this machine is a ground station."""
        return self.shell == self.GROUND_SHELL

    @property
    def is_satellite(self) -> bool:
        """Whether this machine is a satellite server."""
        return not self.is_ground_station


@dataclass(frozen=True)
class UplinkInfo:
    """One usable ground-to-satellite link."""

    shell: int
    satellite: int
    distance_km: float
    delay_ms: float


@dataclass
class ConstellationState:
    """Snapshot of the constellation network at one instant."""

    time_s: float
    gmst_rad: float
    node_index: NodeIndex
    graph: NetworkGraph
    paths: ShortestPaths
    satellite_positions_ecef: dict[int, np.ndarray]
    satellite_latitudes: dict[int, np.ndarray]
    satellite_longitudes: dict[int, np.ndarray]
    active_satellites: dict[int, np.ndarray]
    ground_positions_ecef: dict[str, np.ndarray]
    uplinks: dict[str, list[UplinkInfo]] = field(default_factory=dict)
    _extra_paths: dict[int, ShortestPaths] = field(default_factory=dict, repr=False)

    # -- machine-level queries -------------------------------------------

    def _paths_from(self, node_a: int, node_b: int) -> tuple[ShortestPaths, int, int]:
        """Shortest-path table that contains one of the two nodes as a source.

        The main table covers the configured path sources (by default the
        ground stations).  Queries between two satellites — e.g. a state
        migration between satellite servers — fall back to a lazily computed
        and cached single-source Dijkstra run.
        """
        if self.paths.has_source(node_a):
            return self.paths, node_a, node_b
        if self.paths.has_source(node_b):
            return self.paths, node_b, node_a
        if node_a not in self._extra_paths:
            self._extra_paths[node_a] = ShortestPaths(self.graph, sources=[node_a])
        return self._extra_paths[node_a], node_a, node_b

    def node_for(self, machine: MachineId) -> int:
        """Flat node index of a machine."""
        if machine.is_ground_station:
            return self.node_index.ground_station(machine.name)
        return self.node_index.satellite(machine.shell, machine.identifier)

    def is_active(self, machine: MachineId) -> bool:
        """Whether the machine is inside the bounding box (ground stations always are)."""
        if machine.is_ground_station:
            return True
        return bool(self.active_satellites[machine.shell][machine.identifier])

    def delay_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """One-way shortest-path network delay between two machines [ms]."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        if node_a == node_b:
            return 0.0
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.delay_ms(source, target)

    def rtt_ms(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Round-trip network delay between two machines [ms]."""
        return 2.0 * self.delay_ms(machine_a, machine_b)

    def reachable(self, machine_a: MachineId, machine_b: MachineId) -> bool:
        """Whether a network path exists between the machines."""
        return np.isfinite(self.delay_ms(machine_a, machine_b))

    def path(self, machine_a: MachineId, machine_b: MachineId):
        """Full path (hop node indices) between two machines."""
        node_a, node_b = self.node_for(machine_a), self.node_for(machine_b)
        paths, source, target = self._paths_from(node_a, node_b)
        return paths.path(source, target)

    def bandwidth_kbps(self, machine_a: MachineId, machine_b: MachineId) -> float:
        """Bottleneck bandwidth along the shortest path [kbps] (0 if unreachable)."""
        result = self.path(machine_a, machine_b)
        if not result.reachable or len(result.hops) < 2:
            return 0.0
        hops = np.asarray(result.hops, dtype=np.int64)
        edges = self.graph.edge_ids_between(hops[:-1], hops[1:])
        edges = edges[edges >= 0]
        if edges.size == 0:
            return 0.0
        return float(self.graph.bandwidths_kbps[edges].min())

    def uplinks_of(self, ground_station: str) -> list[UplinkInfo]:
        """Usable uplinks of a ground station, nearest first."""
        return sorted(self.uplinks.get(ground_station, []), key=lambda u: u.distance_km)

    def satellite_position_geodetic(self, shell: int, identifier: int) -> tuple[float, float]:
        """Sub-satellite latitude/longitude of a satellite [degrees]."""
        return (
            float(self.satellite_latitudes[shell][identifier]),
            float(self.satellite_longitudes[shell][identifier]),
        )

    def active_count(self) -> int:
        """Number of satellites currently inside the bounding box."""
        return int(sum(np.count_nonzero(mask) for mask in self.active_satellites.values()))


class ConstellationCalculation:
    """Computes constellation snapshots for a configuration."""

    def __init__(
        self,
        config: Configuration,
        path_sources: Literal["ground_stations", "all"] = "ground_stations",
    ):
        self.config = config
        self.path_sources = path_sources
        self.shells: list[Shell] = [
            Shell(
                shell_config.geometry,
                shell_index=index,
                propagator=shell_config.propagator,
            )
            for index, shell_config in enumerate(config.shells)
        ]
        self.node_index = NodeIndex(
            shell_sizes=config.shell_sizes,
            ground_station_names=config.ground_station_names,
        )
        # Static structures reused across consecutive snapshots: the node
        # index, per-shell +GRID ISL pair arrays (both in-shell and as flat
        # global node indices, split into contiguous endpoint buffers) and
        # the fixed ground-station positions/flat node indices.
        self._isl_pairs = [
            np.array(grid_plus_isl_pairs(shell_config.geometry), dtype=int).reshape(-1, 2)
            for shell_config in config.shells
        ]
        self._isl_endpoints_a = [
            np.ascontiguousarray(pairs[:, 0] + self.node_index.shell_offset(shell))
            for shell, pairs in enumerate(self._isl_pairs)
        ]
        self._isl_endpoints_b = [
            np.ascontiguousarray(pairs[:, 1] + self.node_index.shell_offset(shell))
            for shell, pairs in enumerate(self._isl_pairs)
        ]
        self._ground_positions = {
            gst.name: gst.station.position_ecef for gst in config.ground_stations
        }
        self._ground_nodes = {
            gst.name: self.node_index.ground_station(gst.name)
            for gst in config.ground_stations
        }

    # -- machine identities -------------------------------------------------

    def satellite(self, shell: int, identifier: int) -> MachineId:
        """MachineId of a satellite server."""
        if not 0 <= shell < len(self.shells):
            raise IndexError(f"shell {shell} out of range")
        if not 0 <= identifier < len(self.shells[shell]):
            raise IndexError(f"satellite {identifier} out of range for shell {shell}")
        return MachineId(shell, identifier, f"{identifier}.{shell}.celestial")

    def ground_station(self, name: str) -> MachineId:
        """MachineId of a ground-station server."""
        position = self.config.ground_station_names.index(name)
        return MachineId(MachineId.GROUND_SHELL, position, name)

    def machines(self) -> Iterator[MachineId]:
        """All machines of the configuration (satellites then ground stations)."""
        for shell_index, shell in enumerate(self.shells):
            for satellite in shell:
                yield self.satellite(shell_index, satellite.identifier)
        for name in self.config.ground_station_names:
            yield self.ground_station(name)

    # -- state computation ----------------------------------------------------

    def state_at(
        self, time_s: float, path_method: Literal["dijkstra", "floyd-warshall"] = "dijkstra"
    ) -> ConstellationState:
        """Compute the full constellation state at a simulation time."""
        config = self.config
        gmst = config.epoch.gmst_at(time_s)
        graph = NetworkGraph(self.node_index)

        satellite_positions: dict[int, np.ndarray] = {}
        latitudes: dict[int, np.ndarray] = {}
        longitudes: dict[int, np.ndarray] = {}
        active: dict[int, np.ndarray] = {}

        for shell_index, shell in enumerate(self.shells):
            shell_config = config.shells[shell_index]
            positions_ecef = eci_to_ecef(shell.positions_eci(time_s), gmst)
            satellite_positions[shell_index] = positions_ecef
            lat, lon, _ = ecef_to_geodetic(positions_ecef)
            latitudes[shell_index] = lat
            longitudes[shell_index] = lon
            if config.bounding_box is None:
                active[shell_index] = np.ones(len(shell), dtype=bool)
            else:
                active[shell_index] = np.asarray(
                    config.bounding_box.contains(lat, lon), dtype=bool
                )

            # Inter-satellite links (+GRID) with line-of-sight check, appended
            # in bulk as endpoint/distance/delay arrays (one call per shell).
            pairs = self._isl_pairs[shell_index]
            if pairs.size:
                endpoint_a = positions_ecef[pairs[:, 0]]
                endpoint_b = positions_ecef[pairs[:, 1]]
                distances = slant_range_km(endpoint_a, endpoint_b)
                clear = np.asarray(
                    isl_line_of_sight(
                        endpoint_a,
                        endpoint_b,
                        shell_config.network.atmosphere_grazing_altitude_km,
                    ),
                    dtype=bool,
                )
                distances = distances[clear]
                graph.add_links(
                    self._isl_endpoints_a[shell_index][clear],
                    self._isl_endpoints_b[shell_index][clear],
                    distances,
                    link_delay_ms(distances),
                    shell_config.network.isl_bandwidth_kbps,
                    LinkType.ISL,
                )

        # Ground-station uplinks (bulk-appended per ground station and shell).
        uplinks: dict[str, list[UplinkInfo]] = {name: [] for name in config.ground_station_names}
        for gst_config in config.ground_stations:
            gst_position = self._ground_positions[gst_config.name]
            gst_node = self._ground_nodes[gst_config.name]
            for shell_index, shell_config in enumerate(config.shells):
                min_elevation = (
                    gst_config.min_elevation_deg
                    if gst_config.min_elevation_deg is not None
                    else shell_config.network.min_elevation_deg
                )
                positions = satellite_positions[shell_index]
                visible, distances = visible_satellites(
                    gst_position, positions, min_elevation
                )
                if visible.size == 0:
                    continue
                delays = np.atleast_1d(link_delay_ms(distances))
                bandwidth = (
                    gst_config.uplink_bandwidth_kbps
                    if gst_config.uplink_bandwidth_kbps is not None
                    else shell_config.network.uplink_bandwidth_kbps
                )
                shell_offset = self.node_index.shell_offset(shell_index)
                graph.add_links(
                    np.full(visible.size, gst_node, dtype=np.int64),
                    visible + shell_offset,
                    distances,
                    delays,
                    bandwidth,
                    LinkType.UPLINK,
                )
                uplinks[gst_config.name].extend(
                    UplinkInfo(shell_index, satellite, distance, delay)
                    for satellite, distance, delay in zip(
                        visible.tolist(), distances.tolist(), delays.tolist()
                    )
                )

        sources = self._path_sources()
        paths = ShortestPaths(graph, sources=sources, method=path_method)
        return ConstellationState(
            time_s=time_s,
            gmst_rad=gmst,
            node_index=self.node_index,
            graph=graph,
            paths=paths,
            satellite_positions_ecef=satellite_positions,
            satellite_latitudes=latitudes,
            satellite_longitudes=longitudes,
            active_satellites=active,
            ground_positions_ecef=dict(self._ground_positions),
            uplinks=uplinks,
        )

    def _path_sources(self) -> Optional[Sequence[int]]:
        if self.path_sources == "all":
            return None
        sources = list(self.node_index.ground_station_indices())
        # Without ground stations fall back to all-pairs so queries still work.
        return sources if sources else None
