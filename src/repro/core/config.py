"""Configuration model for a Celestial emulation run.

To limit side effects and ensure repeatable testing, all parameters are
passed within a single configuration file (§3.1): network parameters (ISL
bandwidth, minimum elevation), compute parameters (resources allocated to
satellite and ground-station servers), orbital parameters for each satellite
shell, ground-station locations, the optional bounding box, the host fleet
and the update interval.  This module provides the typed in-memory form of
that file plus (de)serialisation from plain dictionaries and TOML.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Literal, Optional

from repro.core.bounding_box import BoundingBox
from repro.orbits import Epoch, GroundStation, ShellGeometry
from repro.orbits import constants


class ConfigurationError(ValueError):
    """Raised when a configuration is inconsistent or incomplete."""


# Alias kept for symmetry with the other *Config names in the public API.
BoundingBoxConfig = BoundingBox


@dataclass(frozen=True)
class NetworkParams:
    """Network parameters of a shell (or of ground-station uplinks)."""

    isl_bandwidth_kbps: float = 10_000_000.0
    uplink_bandwidth_kbps: float = 10_000_000.0
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG
    atmosphere_grazing_altitude_km: float = constants.ATMOSPHERE_GRAZING_ALTITUDE_KM

    def __post_init__(self):
        if self.isl_bandwidth_kbps <= 0 or self.uplink_bandwidth_kbps <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if not 0.0 <= self.min_elevation_deg < 90.0:
            raise ConfigurationError("minimum elevation must be in [0, 90) degrees")


@dataclass(frozen=True)
class ComputeParams:
    """Compute resources allocated to a class of emulated servers."""

    vcpu_count: int = 2
    memory_mib: int = 512
    disk_mib: int = 512
    cpu_quota: float = 1.0
    idle_cpu_fraction: float = 0.03

    def __post_init__(self):
        if self.vcpu_count <= 0 or self.memory_mib <= 0 or self.disk_mib <= 0:
            raise ConfigurationError("compute resources must be positive")
        if not 0.0 < self.cpu_quota <= 1.0:
            raise ConfigurationError("cpu quota must be in (0, 1]")
        if not 0.0 <= self.idle_cpu_fraction <= 1.0:
            raise ConfigurationError("idle cpu fraction must be in [0, 1]")


@dataclass(frozen=True)
class ShellConfig:
    """One constellation shell with its network and compute parameters."""

    name: str
    geometry: ShellGeometry
    network: NetworkParams = field(default_factory=NetworkParams)
    compute: ComputeParams = field(default_factory=ComputeParams)
    propagator: Literal["kepler_j2", "sgp4"] = "kepler_j2"

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("shell name must not be empty")


@dataclass(frozen=True)
class GroundStationConfig:
    """A ground-station server with its location and resources."""

    station: GroundStation
    compute: ComputeParams = field(default_factory=ComputeParams)
    uplink_bandwidth_kbps: Optional[float] = None
    min_elevation_deg: Optional[float] = None

    @property
    def name(self) -> str:
        """Name of the ground station."""
        return self.station.name


@dataclass(frozen=True)
class HostConfig:
    """The fleet of physical hosts running the emulation."""

    count: int = 1
    cpu_cores: int = 32
    memory_mib: int = 32 * 1024
    inter_host_latency_ms: float = 0.2
    coordinator_cores: int = 16
    coordinator_memory_mib: int = 64 * 1024

    def __post_init__(self):
        if self.count <= 0 or self.cpu_cores <= 0 or self.memory_mib <= 0:
            raise ConfigurationError("host resources must be positive")
        if self.inter_host_latency_ms < 0:
            raise ConfigurationError("inter-host latency must be non-negative")

    @property
    def total_cores(self) -> int:
        """Total CPU cores across all hosts."""
        return self.count * self.cpu_cores

    @property
    def total_memory_mib(self) -> int:
        """Total memory across all hosts [MiB]."""
        return self.count * self.memory_mib


@dataclass(frozen=True)
class Configuration:
    """Complete configuration of one emulation run."""

    shells: tuple[ShellConfig, ...]
    ground_stations: tuple[GroundStationConfig, ...] = ()
    bounding_box: Optional[BoundingBox] = None
    hosts: HostConfig = field(default_factory=HostConfig)
    epoch: Epoch = field(default_factory=Epoch)
    update_interval_s: float = 2.0
    duration_s: float = 600.0
    seed: int = 0

    def __post_init__(self):
        if not self.shells:
            raise ConfigurationError("at least one shell is required")
        if self.update_interval_s <= 0:
            raise ConfigurationError("update interval must be positive")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        names = [shell.name for shell in self.shells]
        if len(set(names)) != len(names):
            raise ConfigurationError("shell names must be unique")
        gst_names = [gst.name for gst in self.ground_stations]
        if len(set(gst_names)) != len(gst_names):
            raise ConfigurationError("ground station names must be unique")

    # -- derived views -----------------------------------------------------

    @property
    def shell_sizes(self) -> list[int]:
        """Number of satellites per shell."""
        return [shell.geometry.total_satellites for shell in self.shells]

    @property
    def total_satellites(self) -> int:
        """Number of satellites across all shells."""
        return sum(self.shell_sizes)

    @property
    def total_machines(self) -> int:
        """Number of emulated machines (satellites + ground stations)."""
        return self.total_satellites + len(self.ground_stations)

    @property
    def ground_station_names(self) -> list[str]:
        """Names of all configured ground stations."""
        return [gst.name for gst in self.ground_stations]

    def ground_station_config(self, name: str) -> GroundStationConfig:
        """Configuration of a ground station by name."""
        for gst in self.ground_stations:
            if gst.name == name:
                return gst
        raise ConfigurationError(f"unknown ground station: {name!r}")

    def update_steps(self) -> int:
        """Number of constellation updates during the run."""
        return int(self.duration_s // self.update_interval_s) + 1

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form of the configuration (JSON/TOML friendly)."""
        return {
            "epoch": self.epoch.start.isoformat(),
            "update_interval_s": self.update_interval_s,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "bounding_box": (
                dataclasses.asdict(self.bounding_box) if self.bounding_box else None
            ),
            "hosts": dataclasses.asdict(self.hosts),
            "shells": [
                {
                    "name": shell.name,
                    "propagator": shell.propagator,
                    "geometry": dataclasses.asdict(shell.geometry),
                    "network": dataclasses.asdict(shell.network),
                    "compute": dataclasses.asdict(shell.compute),
                }
                for shell in self.shells
            ],
            "ground_stations": [
                {
                    "name": gst.station.name,
                    "latitude_deg": gst.station.latitude_deg,
                    "longitude_deg": gst.station.longitude_deg,
                    "altitude_km": gst.station.altitude_km,
                    "compute": dataclasses.asdict(gst.compute),
                    "uplink_bandwidth_kbps": gst.uplink_bandwidth_kbps,
                    "min_elevation_deg": gst.min_elevation_deg,
                }
                for gst in self.ground_stations
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Configuration":
        """Build a configuration from its plain-dictionary form."""
        try:
            shells = tuple(
                ShellConfig(
                    name=shell["name"],
                    geometry=ShellGeometry(**shell["geometry"]),
                    network=NetworkParams(**shell.get("network", {})),
                    compute=ComputeParams(**shell.get("compute", {})),
                    propagator=shell.get("propagator", "kepler_j2"),
                )
                for shell in data["shells"]
            )
            ground_stations = tuple(
                GroundStationConfig(
                    station=GroundStation(
                        name=gst["name"],
                        latitude_deg=gst["latitude_deg"],
                        longitude_deg=gst["longitude_deg"],
                        altitude_km=gst.get("altitude_km", 0.0),
                    ),
                    compute=ComputeParams(**gst.get("compute", {})),
                    uplink_bandwidth_kbps=gst.get("uplink_bandwidth_kbps"),
                    min_elevation_deg=gst.get("min_elevation_deg"),
                )
                for gst in data.get("ground_stations", [])
            )
            bounding_box = None
            if data.get("bounding_box"):
                bounding_box = BoundingBox(**data["bounding_box"])
            hosts = HostConfig(**data.get("hosts", {}))
            epoch = Epoch(datetime.fromisoformat(data["epoch"])) if "epoch" in data else Epoch()
        except (KeyError, TypeError) as error:
            raise ConfigurationError(f"invalid configuration: {error}") from error
        return cls(
            shells=shells,
            ground_stations=ground_stations,
            bounding_box=bounding_box,
            hosts=hosts,
            epoch=epoch,
            update_interval_s=data.get("update_interval_s", 2.0),
            duration_s=data.get("duration_s", 600.0),
            seed=data.get("seed", 0),
        )

    @classmethod
    def from_toml(cls, path) -> "Configuration":
        """Load a configuration from a TOML file."""
        import tomllib

        with open(path, "rb") as handle:
            return cls.from_dict(tomllib.load(handle))

    @classmethod
    def from_path(cls, path) -> "Configuration":
        """Load a configuration from a ``.toml`` or ``.json`` file.

        The format is selected by the file extension; any other suffix is a
        :class:`ConfigurationError` (shared by the CLI and the experiment
        runner, so both reject unknown formats identically).
        """
        import json

        path_str = str(path)
        if path_str.endswith(".toml"):
            return cls.from_toml(path)
        if path_str.endswith(".json"):
            with open(path) as handle:
                return cls.from_dict(json.load(handle))
        raise ConfigurationError(
            f"unsupported configuration file suffix: {path_str!r} "
            "(expected .toml or .json)"
        )
