"""Geographic bounding box used to limit which satellites are emulated.

Satellites whose sub-satellite point lies outside the bounding box are
suspended to free host resources; they are resumed when they re-enter
(§3.3).  The box does not affect network path calculation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.orbits import constants


@dataclass(frozen=True)
class BoundingBox:
    """A latitude/longitude box on the Earth's surface.

    Longitudes may wrap around the antimeridian: a box with
    ``lon_min=170, lon_max=-170`` covers the 20-degree band crossing 180°.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self):
        if not -90.0 <= self.lat_min <= 90.0 or not -90.0 <= self.lat_max <= 90.0:
            raise ValueError("latitudes must be within [-90, 90]")
        if self.lat_min >= self.lat_max:
            raise ValueError("lat_min must be below lat_max")
        for lon in (self.lon_min, self.lon_max):
            if not -180.0 <= lon <= 180.0:
                raise ValueError("longitudes must be within [-180, 180]")

    @classmethod
    def whole_earth(cls) -> "BoundingBox":
        """A box covering the entire Earth (no satellite is ever suspended)."""
        return cls(-90.0, 90.0, -180.0, 180.0)

    @property
    def wraps_antimeridian(self) -> bool:
        """Whether the box crosses the 180° meridian."""
        return self.lon_min > self.lon_max

    def contains(self, latitude_deg, longitude_deg):
        """Whether points (scalar or arrays) are inside the box."""
        latitude = np.asarray(latitude_deg, dtype=float)
        longitude = np.asarray(longitude_deg, dtype=float)
        lat_ok = (latitude >= self.lat_min) & (latitude <= self.lat_max)
        if self.wraps_antimeridian:
            lon_ok = (longitude >= self.lon_min) | (longitude <= self.lon_max)
        else:
            lon_ok = (longitude >= self.lon_min) & (longitude <= self.lon_max)
        result = lat_ok & lon_ok
        if np.ndim(result) == 0:
            return bool(result)
        return result

    def area_fraction(self) -> float:
        """Fraction of the Earth's surface area covered by the box."""
        lat_band = math.sin(math.radians(self.lat_max)) - math.sin(math.radians(self.lat_min))
        if self.wraps_antimeridian:
            lon_extent = (self.lon_max + 360.0) - self.lon_min
        else:
            lon_extent = self.lon_max - self.lon_min
        return (lat_band / 2.0) * (lon_extent / 360.0)

    def area_km2(self) -> float:
        """Approximate surface area of the box [km^2]."""
        total = 4.0 * math.pi * constants.EARTH_RADIUS_MEAN_KM**2
        return self.area_fraction() * total

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy of the box expanded by a margin on every side."""
        if margin_deg < 0:
            raise ValueError("margin must be non-negative")
        lon_min = self.lon_min - margin_deg
        lon_max = self.lon_max + margin_deg
        if not self.wraps_antimeridian:
            lon_min = max(-180.0, lon_min)
            lon_max = min(180.0, lon_max)
        return BoundingBox(
            lat_min=max(-90.0, self.lat_min - margin_deg),
            lat_max=min(90.0, self.lat_max + margin_deg),
            lon_min=lon_min,
            lon_max=lon_max,
        )
