"""Geographic bounding box used to limit which satellites are emulated.

Satellites whose sub-satellite point lies outside the bounding box are
suspended to free host resources; they are resumed when they re-enter
(§3.3).  The box does not affect network path calculation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.orbits import constants
from repro.orbits.coordinates import (
    GEOCENTRIC_LATITUDE_MARGIN_DEG,
    WGS84_EQUATORIAL_RADIUS_KM,
    ecef_to_geocentric_latlon,
    ecef_to_geodetic,
)


@dataclass(frozen=True)
class BoundingBox:
    """A latitude/longitude box on the Earth's surface.

    Longitudes may wrap around the antimeridian: a box with
    ``lon_min=170, lon_max=-170`` covers the 20-degree band crossing 180°.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self):
        if not -90.0 <= self.lat_min <= 90.0 or not -90.0 <= self.lat_max <= 90.0:
            raise ValueError("latitudes must be within [-90, 90]")
        if self.lat_min >= self.lat_max:
            raise ValueError("lat_min must be below lat_max")
        for lon in (self.lon_min, self.lon_max):
            if not -180.0 <= lon <= 180.0:
                raise ValueError("longitudes must be within [-180, 180]")

    @classmethod
    def whole_earth(cls) -> "BoundingBox":
        """A box covering the entire Earth (no satellite is ever suspended)."""
        return cls(-90.0, 90.0, -180.0, 180.0)

    @property
    def wraps_antimeridian(self) -> bool:
        """Whether the box crosses the 180° meridian."""
        return self.lon_min > self.lon_max

    def contains(self, latitude_deg, longitude_deg):
        """Whether points (scalar or arrays) are inside the box."""
        latitude = np.asarray(latitude_deg, dtype=float)
        longitude = np.asarray(longitude_deg, dtype=float)
        lat_ok = (latitude >= self.lat_min) & (latitude <= self.lat_max)
        if self.wraps_antimeridian:
            lon_ok = (longitude >= self.lon_min) | (longitude <= self.lon_max)
        else:
            lon_ok = (longitude >= self.lon_min) & (longitude <= self.lon_max)
        result = lat_ok & lon_ok
        if np.ndim(result) == 0:
            return bool(result)
        return result

    def contains_ecef(self, position_ecef) -> np.ndarray:
        """Whether ECEF points (km) lie inside the box — the cheap path.

        Produces decisions identical to
        ``contains(*ecef_to_geodetic(position_ecef)[:2])`` without paying
        the iterative geodetic conversion for every point: the longitude
        test is exact either way (both conversions share the same
        ``arctan2``), and the latitude test uses the geocentric angle,
        whose deviation from the geodetic latitude is certified below
        :data:`~repro.orbits.coordinates.GEOCENTRIC_LATITUDE_MARGIN_DEG`
        for points at or above the surface.  Only points within the
        margin band of a latitude edge — or below the surface radius,
        where the bound is void — fall back to the exact conversion,
        element for element bitwise identical to the full one.
        """
        positions = np.asarray(position_ecef, dtype=float)
        scalar = positions.ndim == 1
        positions = np.atleast_2d(positions)
        geocentric_lat, longitude = ecef_to_geocentric_latlon(positions)
        if self.wraps_antimeridian:
            lon_ok = (longitude >= self.lon_min) | (longitude <= self.lon_max)
        else:
            lon_ok = (longitude >= self.lon_min) & (longitude <= self.lon_max)
        margin = GEOCENTRIC_LATITUDE_MARGIN_DEG
        lat_ok = (geocentric_lat >= self.lat_min + margin) & (
            geocentric_lat <= self.lat_max - margin
        )
        certain = lat_ok | (
            (geocentric_lat < self.lat_min - margin)
            | (geocentric_lat > self.lat_max + margin)
        )
        # The margin is only certified at or above the surface: points that
        # could lie below the ellipsoid take the exact conversion instead.
        radius_sq = np.add.reduce(positions * positions, axis=-1)
        certain &= radius_sq >= WGS84_EQUATORIAL_RADIUS_KM * WGS84_EQUATORIAL_RADIUS_KM
        uncertain = ~certain
        if np.any(uncertain):
            exact_lat, _, _ = ecef_to_geodetic(positions[uncertain])
            lat_ok[uncertain] = (exact_lat >= self.lat_min) & (
                exact_lat <= self.lat_max
            )
        result = lat_ok & lon_ok
        if scalar:
            return bool(result[0])
        return result

    def area_fraction(self) -> float:
        """Fraction of the Earth's surface area covered by the box."""
        lat_band = math.sin(math.radians(self.lat_max)) - math.sin(math.radians(self.lat_min))
        if self.wraps_antimeridian:
            lon_extent = (self.lon_max + 360.0) - self.lon_min
        else:
            lon_extent = self.lon_max - self.lon_min
        return (lat_band / 2.0) * (lon_extent / 360.0)

    def area_km2(self) -> float:
        """Approximate surface area of the box [km^2]."""
        total = 4.0 * math.pi * constants.EARTH_RADIUS_MEAN_KM**2
        return self.area_fraction() * total

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy of the box expanded by a margin on every side."""
        if margin_deg < 0:
            raise ValueError("margin must be non-negative")
        lon_min = self.lon_min - margin_deg
        lon_max = self.lon_max + margin_deg
        if not self.wraps_antimeridian:
            lon_min = max(-180.0, lon_min)
            lon_max = min(180.0, lon_max)
        return BoundingBox(
            lat_min=max(-90.0, self.lat_min - margin_deg),
            lat_max=min(90.0, self.lat_max + margin_deg),
            lon_min=lon_min,
            lon_max=lon_max,
        )
