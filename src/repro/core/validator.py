"""Configuration validation and host resource estimation.

Celestial helps the user size their bounding box: it estimates the host
resources required given per-microVM resources, satellite density and
bounding-box area (§3.3; in the §4 experiment Celestial estimates 137
required CPU cores).  The estimate here samples the constellation over one
orbital period, counts how many satellites are simultaneously inside the
bounding box, and adds a safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounding_box import BoundingBox
from repro.core.config import Configuration
from repro.orbits import Shell
from repro.orbits.coordinates import ecef_to_geodetic, eci_to_ecef

#: Safety margin applied to the peak number of in-box satellites.
SAFETY_MARGIN = 1.2
#: Number of constellation snapshots sampled over one orbital period.
ESTIMATE_SAMPLES = 12


@dataclass
class ResourceEstimate:
    """Estimated host resources required for an emulation run."""

    satellites_in_box_per_shell: list[int]
    ground_station_count: int
    required_cores: float
    required_memory_mib: float
    available_cores: int
    available_memory_mib: int
    warnings: list[str] = field(default_factory=list)

    @property
    def satellites_in_box(self) -> int:
        """Peak number of satellites expected inside the bounding box."""
        return sum(self.satellites_in_box_per_shell)

    @property
    def cores_sufficient(self) -> bool:
        """Whether the hosts provide the estimated CPU cores."""
        return self.available_cores >= self.required_cores

    @property
    def memory_sufficient(self) -> bool:
        """Whether the hosts provide the estimated memory."""
        return self.available_memory_mib >= self.required_memory_mib

    @property
    def overprovisioning_factor(self) -> float:
        """Ratio of required to available cores (>1 means over-provisioned)."""
        return self.required_cores / self.available_cores if self.available_cores else float("inf")


def _peak_satellites_in_box(shell: Shell, box: BoundingBox, epoch, period_s: float) -> int:
    peak = 0
    for sample_time in np.linspace(0.0, period_s, ESTIMATE_SAMPLES):
        gmst = epoch.gmst_at(float(sample_time))
        positions = shell.positions_eci(float(sample_time))
        lat, lon, _ = ecef_to_geodetic(eci_to_ecef(positions, gmst))
        in_box = int(np.count_nonzero(box.contains(lat, lon)))
        peak = max(peak, in_box)
    return peak


def estimate_resources(config: Configuration) -> ResourceEstimate:
    """Estimate required cores/memory for a configuration.

    With no bounding box, every satellite is emulated at all times.
    """
    box = config.bounding_box
    per_shell: list[int] = []
    required_cores = 0.0
    required_memory = 0.0
    for shell_index, shell_config in enumerate(config.shells):
        geometry = shell_config.geometry
        if box is None:
            expected = geometry.total_satellites
        else:
            shell = Shell(geometry, shell_index=shell_index, propagator="kepler_j2")
            peak = _peak_satellites_in_box(shell, box, config.epoch, geometry.period_s)
            expected = min(
                geometry.total_satellites, int(np.ceil(peak * SAFETY_MARGIN))
            )
        per_shell.append(expected)
        required_cores += expected * shell_config.compute.vcpu_count
        required_memory += expected * shell_config.compute.memory_mib
    for gst in config.ground_stations:
        required_cores += gst.compute.vcpu_count
        required_memory += gst.compute.memory_mib

    warnings: list[str] = []
    estimate = ResourceEstimate(
        satellites_in_box_per_shell=per_shell,
        ground_station_count=len(config.ground_stations),
        required_cores=required_cores,
        required_memory_mib=required_memory,
        available_cores=config.hosts.total_cores,
        available_memory_mib=config.hosts.total_memory_mib,
        warnings=warnings,
    )
    if not estimate.memory_sufficient:
        warnings.append(
            "hosts do not provide enough memory for all booted microVMs: "
            f"{estimate.required_memory_mib:.0f} MiB required, "
            f"{estimate.available_memory_mib} MiB available"
        )
    if not estimate.cores_sufficient:
        warnings.append(
            "hosts provide fewer CPU cores than allocated vCPUs "
            f"({estimate.required_cores:.0f} required, {estimate.available_cores} available); "
            "relying on over-provisioning"
        )
    return estimate


def validate_configuration(config: Configuration) -> list[str]:
    """Validate a configuration; returns a list of human-readable warnings.

    Hard inconsistencies raise :class:`ConfigurationError` during
    construction of :class:`Configuration`; this function adds resource-fit
    warnings (memory is a hard limit, CPU may be over-provisioned §4.1) and
    sanity checks that require the constellation geometry.
    """
    warnings = list(estimate_resources(config).warnings)
    for gst in config.ground_stations:
        min_elevation = (
            gst.min_elevation_deg
            if gst.min_elevation_deg is not None
            else min(shell.network.min_elevation_deg for shell in config.shells)
        )
        if min_elevation >= 85.0:
            warnings.append(
                f"ground station {gst.name!r} requires {min_elevation} degree elevation; "
                "it will almost never see a satellite"
            )
        max_inclination = max(
            shell.geometry.inclination_deg for shell in config.shells
        )
        reachable_latitude = min(90.0, max_inclination + 15.0)
        if abs(gst.station.latitude_deg) > reachable_latitude:
            warnings.append(
                f"ground station {gst.name!r} lies at latitude "
                f"{gst.station.latitude_deg}, beyond the coverage of all shells"
            )
    if config.update_interval_s > 10.0:
        warnings.append(
            "update interval above 10 s: satellite movement between updates will be coarse"
        )
    return warnings
