"""Constellation snapshot export (the optional animation component).

Celestial's animation component visualises the state of the constellation
during a run (§3.1, Fig. 1).  An offline library cannot open a 3D window, so
this module exports the same information in structured form: plain
dictionaries and GeoJSON, which downstream tools (or the paper's figures) can
render.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.constellation import ConstellationState
from repro.orbits.coordinates import ecef_to_geodetic


def constellation_snapshot(state: ConstellationState, include_links: bool = True) -> dict:
    """Structured snapshot of satellites, ground stations and links."""
    satellites = []
    for shell, positions in state.satellite_positions_ecef.items():
        latitudes = state.satellite_latitudes[shell]
        longitudes = state.satellite_longitudes[shell]
        active = state.active_satellites[shell]
        altitudes = np.linalg.norm(positions, axis=1) - 6378.135
        for identifier in range(positions.shape[0]):
            satellites.append(
                {
                    "shell": shell,
                    "identifier": identifier,
                    "latitude_deg": float(latitudes[identifier]),
                    "longitude_deg": float(longitudes[identifier]),
                    "altitude_km": float(altitudes[identifier]),
                    "active": bool(active[identifier]),
                }
            )
    ground_stations = []
    for name, position in state.ground_positions_ecef.items():
        lat, lon, alt = ecef_to_geodetic(position)
        ground_stations.append(
            {
                "name": name,
                "latitude_deg": float(lat),
                "longitude_deg": float(lon),
                "altitude_km": float(alt),
            }
        )
    snapshot = {
        "time_s": state.time_s,
        "satellites": satellites,
        "ground_stations": ground_stations,
    }
    if include_links:
        snapshot["links"] = [
            {
                "a": state.node_index.describe(link.node_a),
                "b": state.node_index.describe(link.node_b),
                "distance_km": link.distance_km,
                "delay_ms": link.delay_ms,
                "type": link.link_type.value,
            }
            for link in state.graph.links
        ]
    return snapshot


def ascii_map(
    state: ConstellationState,
    width: int = 72,
    height: int = 24,
    shell: Optional[int] = None,
) -> str:
    """Render an equirectangular ASCII map of the constellation.

    Active satellites appear as ``#``, suspended (out-of-bounding-box)
    satellites as ``*`` and ground stations as ``G``.  The map is a quick
    terminal substitute for the paper's 3D animation window.
    """
    if width < 10 or height < 5:
        raise ValueError("map must be at least 10x5 characters")
    grid = [["." for _ in range(width)] for _ in range(height)]

    def plot(latitude: float, longitude: float, symbol: str) -> None:
        column = int((longitude + 180.0) / 360.0 * (width - 1))
        row = int((90.0 - latitude) / 180.0 * (height - 1))
        row = min(max(row, 0), height - 1)
        column = min(max(column, 0), width - 1)
        if grid[row][column] != "G":
            grid[row][column] = symbol

    for shell_index, latitudes in state.satellite_latitudes.items():
        if shell is not None and shell_index != shell:
            continue
        longitudes = state.satellite_longitudes[shell_index]
        active = state.active_satellites[shell_index]
        for identifier in range(latitudes.shape[0]):
            symbol = "#" if active[identifier] else "*"
            plot(float(latitudes[identifier]), float(longitudes[identifier]), symbol)
    for position in state.ground_positions_ecef.values():
        latitude, longitude, _ = ecef_to_geodetic(position)
        plot(float(latitude), float(longitude), "G")
    return "\n".join("".join(row) for row in grid)


def snapshot_to_geojson(state: ConstellationState, shell: Optional[int] = None) -> dict:
    """GeoJSON FeatureCollection of satellite and ground-station positions."""
    features = []
    for shell_index, latitudes in state.satellite_latitudes.items():
        if shell is not None and shell_index != shell:
            continue
        longitudes = state.satellite_longitudes[shell_index]
        active = state.active_satellites[shell_index]
        for identifier in range(latitudes.shape[0]):
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "Point",
                        "coordinates": [
                            float(longitudes[identifier]),
                            float(latitudes[identifier]),
                        ],
                    },
                    "properties": {
                        "kind": "satellite",
                        "shell": shell_index,
                        "identifier": identifier,
                        "active": bool(active[identifier]),
                    },
                }
            )
    for name, position in state.ground_positions_ecef.items():
        lat, lon, _ = ecef_to_geodetic(position)
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "Point", "coordinates": [float(lon), float(lat)]},
                "properties": {"kind": "ground_station", "name": name},
            }
        )
    return {"type": "FeatureCollection", "features": features}
