"""Celestial core: the paper's primary contribution.

This package contains the components shown in Fig. 2 of the paper:

* the **configuration file** model and **validator** (resource estimation),
* the **Constellation Calculation** (positions, topology, shortest paths),
* the central **database** and per-host **HTTP info API** / **DNS server**,
* the **Machine Manager** that boots/suspends microVMs and installs network
  rules on each host,
* **fault injection**, the optional **animation** exporter, and
* the **Coordinator** plus the high-level :class:`Celestial` testbed façade.
"""

from repro.core.config import (
    BoundingBoxConfig,
    ComputeParams,
    Configuration,
    ConfigurationError,
    GroundStationConfig,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.core.bounding_box import BoundingBox
from repro.core.addressing import gateway_ip, machine_ip, network_for, parse_machine_ip
from repro.core.dns import CelestialDNS, DNSError
from repro.core.validator import ResourceEstimate, estimate_resources, validate_configuration
from repro.core.constellation import (
    ConstellationCalculation,
    ConstellationDiff,
    ConstellationState,
    MachineId,
)
from repro.core.database import ConstellationDatabase
from repro.core.info_api import HTTPInfoServer, InfoAPI, InfoAPIError
from repro.core.machine_manager import HostStateSlice, MachineManager
from repro.core.fault_injection import FaultInjector, RadiationModel
from repro.core.coordinator import Coordinator
from repro.core.animation import ascii_map, constellation_snapshot, snapshot_to_geojson
from repro.core.testbed import Celestial

__all__ = [
    "BoundingBox",
    "BoundingBoxConfig",
    "Celestial",
    "CelestialDNS",
    "ComputeParams",
    "Configuration",
    "ConfigurationError",
    "ConstellationCalculation",
    "ConstellationDiff",
    "ConstellationDatabase",
    "ConstellationState",
    "Coordinator",
    "DNSError",
    "FaultInjector",
    "GroundStationConfig",
    "HTTPInfoServer",
    "HostConfig",
    "HostStateSlice",
    "InfoAPI",
    "InfoAPIError",
    "MachineId",
    "MachineManager",
    "NetworkParams",
    "RadiationModel",
    "ResourceEstimate",
    "ShellConfig",
    "ascii_map",
    "constellation_snapshot",
    "estimate_resources",
    "gateway_ip",
    "machine_ip",
    "network_for",
    "parse_machine_ip",
    "snapshot_to_geojson",
    "validate_configuration",
]
