"""The high-level Celestial testbed façade.

``Celestial`` wires all components of Fig. 2 together: the coordinator with
its Constellation Calculation and database, the hosts with their Machine
Managers and microVMs, the virtual network with its per-pair rules, DNS, the
HTTP info API and fault injection — all driven by a deterministic
discrete-event simulation so experiments are repeatable (§4.2).
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.core.config import Configuration
from repro.core.constellation import ConstellationCalculation, ConstellationState, MachineId
from repro.core.coordinator import Coordinator
from repro.core.database import ConstellationDatabase
from repro.core.dns import CelestialDNS
from repro.core.fault_injection import FaultInjector
from repro.core.info_api import InfoAPI
from repro.core.machine_manager import MachineManager
from repro.core.validator import estimate_resources
from repro.hosts import Host, ResourceTrace
from repro.net.endpoint import NetworkEndpoint
from repro.net.network import VirtualNetwork
from repro.netem import WireGuardOverlay
from repro.sim import RandomStreams, Simulation


class Celestial:
    """A complete virtual LEO edge testbed for one configuration."""

    def __init__(
        self,
        config: Configuration,
        path_sources: Literal["ground_stations", "all"] = "ground_stations",
        usage_sample_interval_s: float = 5.0,
        allow_memory_overcommit: bool = True,
        parallelism: Literal["threads", "processes"] = "threads",
        worker_count: Optional[int] = None,
        transport="pipe",
        cache_decay_half_life: float = 1.0,
        cache_score=None,
    ):
        self.config = config
        self.sim = Simulation()
        self.streams = RandomStreams(config.seed)
        self.calculation = ConstellationCalculation(
            config,
            path_sources=path_sources,
            cache_decay_half_life=cache_decay_half_life,
            cache_score=cache_score,
        )
        self.database = ConstellationDatabase()
        self.dns = CelestialDNS(config.shell_sizes, config.ground_station_names)
        self.hosts = [
            Host(
                index=index,
                cpu_cores=config.hosts.cpu_cores,
                memory_mib=config.hosts.memory_mib,
                allow_memory_overcommit=allow_memory_overcommit,
            )
            for index in range(config.hosts.count)
        ]
        self.overlay = WireGuardOverlay(
            host_count=config.hosts.count,
            inter_host_latency_ms=config.hosts.inter_host_latency_ms,
        )
        self.managers = [
            MachineManager(host, rng=self.streams.stream(f"manager-{host.index}"))
            for host in self.hosts
        ]
        self.network = VirtualNetwork(
            self.sim,
            rule_provider=self._pair_rule,
            running_check=self._machine_running,
            rng=self.streams.stream("network"),
        )
        self.coordinator = Coordinator(
            config,
            self.calculation,
            self.database,
            self.managers,
            self.network,
            parallelism=parallelism,
            worker_count=worker_count,
            transport=transport,
        )
        # With the process backend the coordinator hands out mirrored
        # managers (in-process shadows + worker forwarding); use those for
        # every manager-level interaction so lifecycle operations reach the
        # authoritative worker-side copies.
        self.managers = self.coordinator.managers
        self.fault_injector = FaultInjector(
            manager_resolver=self.coordinator.manager_for, network=self.network
        )
        self.info_api = InfoAPI(self.database, self.calculation, self.dns)
        self.usage_sample_interval_s = usage_sample_interval_s
        self.resource_estimate = estimate_resources(config)
        self._started = False

    # -- wiring callbacks -----------------------------------------------------

    def _pair_rule(self, source: MachineId, destination: MachineId):
        return self.database.pair_rule(source, destination)

    def _machine_running(self, machine: MachineId) -> bool:
        if not self.coordinator.has_machine(machine):
            return False
        manager = self.coordinator.manager_for(machine)
        return manager.is_running_at(machine, self.sim.now)

    # -- machine identities ------------------------------------------------------

    def satellite(self, shell: int, identifier: int) -> MachineId:
        """MachineId of a satellite server."""
        return self.calculation.satellite(shell, identifier)

    def ground_station(self, name: str) -> MachineId:
        """MachineId of a ground-station server."""
        return self.calculation.ground_station(name)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Create ground stations, run the first update and start the run loop."""
        if self._started:
            return
        self._started = True
        self.coordinator.create_ground_stations(self.sim.now)
        self.coordinator.sample_all_usage(self.sim.now, setup_phase=True)
        self.sim.process(self.coordinator.run_updates(self.sim))
        self.sim.process(self._usage_sampling_process())

    def _usage_sampling_process(self):
        interval = self.usage_sample_interval_s
        while True:
            yield self.sim.timeout(interval)
            applying_update = (self.sim.now % self.config.update_interval_s) < 1e-9
            self.coordinator.sample_all_usage(
                self.sim.now, applying_update=applying_update
            )

    def run(self, until: Optional[float] = None) -> None:
        """Run the emulation until ``until`` (default: the configured duration)."""
        if not self._started:
            self.start()
        self.sim.run(until if until is not None else self.config.duration_s)

    def close(self) -> None:
        """Release the coordinator's fan-out backend (idempotent).

        Required with ``parallelism="processes"`` to join the worker pool
        deterministically; a no-op-safe courtesy with the default thread
        backend (and also invoked automatically at interpreter exit).
        """
        self.coordinator.close()

    # -- application-facing API ------------------------------------------------------

    def endpoint(self, machine: MachineId) -> NetworkEndpoint:
        """Network endpoint of a machine for application processes."""
        return NetworkEndpoint(self.sim, self.network, machine)

    def ensure_machine(self, machine: MachineId) -> None:
        """Create and boot a machine immediately (outside bounding-box logic)."""
        self.coordinator.create_machine(machine, self.sim.now)

    def machine(self, machine: MachineId):
        """The microVM backing a machine."""
        return self.coordinator.manager_for(machine).machine(machine)

    def machine_running(self, machine: MachineId) -> bool:
        """Whether a machine is currently running."""
        return self._machine_running(machine)

    def set_busy(self, machine: MachineId, fraction: float) -> None:
        """Report how busy a machine's workload keeps its vCPUs (for Figs. 7-8)."""
        self.coordinator.manager_for(machine).set_busy_fraction(machine, fraction)

    def processing_delay_s(
        self, machine: MachineId, nominal_seconds: float, parallelism: int = 1
    ) -> float:
        """Wall-clock duration of a compute task on a machine under its CPU quota."""
        if not self.coordinator.has_machine(machine):
            return nominal_seconds
        microvm = self.machine(machine)
        return microvm.cpu_quota.scaled_duration(nominal_seconds, parallelism=parallelism)

    # -- observability ------------------------------------------------------------------

    @property
    def state(self) -> ConstellationState:
        """The latest constellation state published by the coordinator."""
        return self.database.state

    def resource_traces(self) -> dict[int, ResourceTrace]:
        """Per-host resource usage traces (Figs. 7-8)."""
        return {host.index: host.trace for host in self.hosts}

    def network_statistics(self) -> dict[str, int]:
        """Counters of the virtual network data plane."""
        return {
            "sent": self.network.messages_sent,
            "delivered": self.network.messages_delivered,
            "dropped": self.network.messages_dropped,
        }

    def path_engine_statistics(self) -> dict:
        """Path-engine solver/kernel counters and per-update repair regimes.

        ``totals`` is the cumulative
        :class:`~repro.topology.paths.PathEngineStats` snapshot (solver
        calls, kernel calls, repaired rows, churn-guard bypasses, the
        epoch-batched ``advance_all`` attribution); ``regimes`` counts
        which path-repair regime each coordinator update took; ``cache``
        summarises the extra-table cache's hit/miss/eviction totals;
        ``cache_parameters`` records the eviction value-function tunables
        the run used, so result bundles are self-describing.
        """
        regimes: dict[str, int] = {}
        for regime in self.coordinator.stats.path_regimes:
            regimes[regime] = regimes.get(regime, 0) + 1
        return {
            "totals": dict(self.coordinator.stats.path_engine_totals),
            "regimes": regimes,
            "cache": self.coordinator.stats.path_cache_events,
            "cache_parameters": self.calculation.cache_parameters(),
        }

    def booted_machines(self) -> int:
        """Number of microVMs created across all hosts."""
        return sum(len(host.machines) for host in self.hosts)
