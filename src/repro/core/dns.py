"""Local DNS for emulated machines.

Each Celestial host provides a DNS server that resolves microVM network
addresses with a custom record scheme, e.g. the A record for
``878.0.celestial`` is the address of satellite 878 in the first shell
(§3.2).  Ground stations resolve as ``<name>.gst.celestial``.  Applications
can thus address machines by name without knowing the underlying IP
address-space calculation.
"""

from __future__ import annotations

import ipaddress
from typing import Sequence

from repro.core.addressing import machine_ip


class DNSError(KeyError):
    """Raised when a name or address cannot be resolved."""


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-").replace(",", "")


class CelestialDNS:
    """Resolves Celestial machine names to virtual network addresses."""

    def __init__(self, shell_sizes: Sequence[int], ground_station_names: Sequence[str]):
        self.shell_sizes = list(shell_sizes)
        self.ground_station_names = list(ground_station_names)
        self._gst_index = {
            _slug(name): position for position, name in enumerate(self.ground_station_names)
        }
        self._reverse: dict[ipaddress.IPv4Address, str] = {}
        for shell, size in enumerate(self.shell_sizes):
            for identifier in range(size):
                self._reverse[machine_ip(self.shell_sizes, shell, identifier)] = (
                    f"{identifier}.{shell}.celestial"
                )
        for position, name in enumerate(self.ground_station_names):
            address = machine_ip(self.shell_sizes, len(self.shell_sizes), position)
            self._reverse[address] = f"{_slug(name)}.gst.celestial"

    # -- resolution ---------------------------------------------------------

    def resolve(self, name: str) -> ipaddress.IPv4Address:
        """Resolve a machine name (A record lookup)."""
        labels = name.lower().rstrip(".").split(".")
        if not labels or labels[-1] != "celestial":
            raise DNSError(f"not a celestial name: {name!r}")
        body = labels[:-1]
        if len(body) == 2 and body[0].isdigit() and body[1].isdigit():
            identifier, shell = int(body[0]), int(body[1])
            if shell >= len(self.shell_sizes) or identifier >= self.shell_sizes[shell]:
                raise DNSError(f"no such satellite: {name!r}")
            return machine_ip(self.shell_sizes, shell, identifier)
        # Ground stations: both "<name>.gst.celestial" and "gst.<name>.celestial".
        if len(body) == 2 and "gst" in body:
            gst_name = body[1] if body[0] == "gst" else body[0]
            if gst_name not in self._gst_index:
                raise DNSError(f"no such ground station: {name!r}")
            return machine_ip(
                self.shell_sizes, len(self.shell_sizes), self._gst_index[gst_name]
            )
        raise DNSError(f"cannot resolve {name!r}")

    def a_record(self, name: str) -> dict[str, str]:
        """DNS A record as a dictionary (mirrors the record a resolver returns)."""
        return {"name": name, "type": "A", "address": str(self.resolve(name))}

    def reverse(self, address: ipaddress.IPv4Address | str) -> str:
        """Reverse lookup of a machine address to its canonical name."""
        address = ipaddress.IPv4Address(address)
        if address not in self._reverse:
            raise DNSError(f"no machine with address {address}")
        return self._reverse[address]

    def satellite_name(self, shell: int, identifier: int) -> str:
        """Canonical DNS name of a satellite."""
        return f"{identifier}.{shell}.celestial"

    def ground_station_name(self, name: str) -> str:
        """Canonical DNS name of a ground station."""
        if _slug(name) not in self._gst_index:
            raise DNSError(f"no such ground station: {name!r}")
        return f"{_slug(name)}.gst.celestial"
