"""Physical and astrodynamic constants (WGS-72/WGS-84, SI-adjacent units).

Distances are kilometres, times are seconds unless stated otherwise, matching
the conventions used throughout the constellation calculation.
"""

# Speed of light in vacuum [km/s].  ISLs and RF ground links both propagate at
# c in the paper's latency model (§4.1).
SPEED_OF_LIGHT_KM_S = 299_792.458

# Approximate speed of light in optical fiber [km/s] (~2/3 c); used for
# comparisons with terrestrial paths (ISLs are ~47% faster, §2.1).
SPEED_OF_LIGHT_FIBER_KM_S = SPEED_OF_LIGHT_KM_S / 1.47

# Earth gravitational parameter [km^3/s^2] (WGS-72, as used by SGP4).
EARTH_MU_KM3_S2 = 398_600.8

# Earth radii [km].
EARTH_RADIUS_KM = 6_378.135          # WGS-72 equatorial radius (SGP4)
EARTH_RADIUS_MEAN_KM = 6_371.0
EARTH_FLATTENING = 1.0 / 298.26

# Zonal harmonics (WGS-72).
EARTH_J2 = 1.082616e-3
EARTH_J3 = -2.53881e-6
EARTH_J4 = -1.65597e-6

# SGP4 canonical units.
XKE = 0.0743669161          # sqrt(GM) in (earth radii)^1.5 / min
TUMIN = 1.0 / XKE           # minutes per canonical time unit

# Rotation rate of the Earth [rad/s] (sidereal).
EARTH_ROTATION_RAD_S = 7.2921158553e-5

# Seconds per day / minutes per day.
SECONDS_PER_DAY = 86_400.0
MINUTES_PER_DAY = 1_440.0

# Altitude below which an inter-satellite laser link is considered blocked by
# the atmosphere (grazing height over the Earth's surface, km).  Hypatia and
# SILLEO-SCNS commonly use 80-100 km; Celestial models refraction loss for
# links dipping into the atmosphere (§3.1).
ATMOSPHERE_GRAZING_ALTITUDE_KM = 80.0

# Default minimum elevation angle for ground-to-satellite links [degrees].
DEFAULT_MIN_ELEVATION_DEG = 40.0
