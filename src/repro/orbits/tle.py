"""NORAD two-line element set (TLE) parsing, generation and validation.

Celestial obtains SGP4 input parameters either from the NORAD TLE database
(for satellites already in orbit) or computes them from simple shell
parameters such as inclination and altitude (§3.1).  This module supports
both directions: parsing published TLEs and generating synthetic TLEs for
constellation shells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.orbits import constants
from repro.orbits.kepler import KeplerianElements


class TLEError(ValueError):
    """Raised when a TLE line cannot be parsed or fails validation."""


def _checksum(line: str) -> int:
    """TLE modulo-10 checksum: digits count their value, '-' counts one."""
    total = 0
    for char in line[:68]:
        if char.isdigit():
            total += int(char)
        elif char == "-":
            total += 1
    return total % 10


def _format_exponential(value: float) -> str:
    """Format a float in the 8-character TLE 'assumed decimal' notation."""
    if value == 0.0:
        return " 00000+0"
    sign = "-" if value < 0 else " "
    value = abs(value)
    exponent = int(math.floor(math.log10(value))) + 1
    mantissa = value / (10.0**exponent)
    mantissa_digits = int(round(mantissa * 1e5))
    if mantissa_digits >= 100000:
        mantissa_digits = 10000
        exponent += 1
    exp_sign = "+" if exponent >= 0 else "-"
    return f"{sign}{mantissa_digits:05d}{exp_sign}{abs(exponent)}"


def _parse_exponential(field: str) -> float:
    """Parse the 'assumed decimal point' exponential TLE field."""
    field = field.strip()
    if not field:
        return 0.0
    mantissa_sign = -1.0 if field[0] == "-" else 1.0
    body = field[1:] if field[0] in "+- " else field
    body = body.strip()
    if not body:
        return 0.0
    exponent_part = body[-2:]
    mantissa_part = body[:-2]
    mantissa = mantissa_sign * float(f"0.{mantissa_part}") if mantissa_part else 0.0
    exponent = int(exponent_part.replace("+", ""))
    return mantissa * (10.0**exponent)


@dataclass(frozen=True)
class TwoLineElement:
    """A parsed (or generated) two-line element set."""

    name: str
    satellite_number: int
    classification: str
    international_designator: str
    epoch: datetime
    mean_motion_rev_day: float
    eccentricity: float
    inclination_deg: float
    raan_deg: float
    arg_perigee_deg: float
    mean_anomaly_deg: float
    bstar: float = 0.0
    mean_motion_dot: float = 0.0
    mean_motion_ddot: float = 0.0
    element_set_number: int = 1
    revolution_number: int = 0

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, line1: str, line2: str, name: str = "") -> "TwoLineElement":
        """Parse a TLE from its two 69-character lines."""
        for index, line in ((1, line1), (2, line2)):
            if len(line) < 68:
                raise TLEError(f"line {index} is too short: {len(line)} chars")
            if line[0] != str(index):
                raise TLEError(f"line {index} must start with '{index}'")
            if len(line) >= 69 and line[68].isdigit():
                if int(line[68]) != _checksum(line):
                    raise TLEError(f"line {index} checksum mismatch")
        satellite_number = int(line1[2:7])
        classification = line1[7].strip() or "U"
        international_designator = line1[9:17].strip()
        epoch_year = int(line1[18:20])
        epoch_year += 2000 if epoch_year < 57 else 1900
        epoch_day = float(line1[20:32])
        epoch = datetime(epoch_year, 1, 1) + timedelta(days=epoch_day - 1.0)
        mean_motion_dot = float(line1[33:43])
        mean_motion_ddot = _parse_exponential(line1[44:52])
        bstar = _parse_exponential(line1[53:61])
        element_set_number = int(line1[64:68])
        inclination = float(line2[8:16])
        raan = float(line2[17:25])
        eccentricity = float(f"0.{line2[26:33].strip()}")
        arg_perigee = float(line2[34:42])
        mean_anomaly = float(line2[43:51])
        mean_motion = float(line2[52:63])
        revolution_number = int(line2[63:68]) if line2[63:68].strip() else 0
        return cls(
            name=name.strip(),
            satellite_number=satellite_number,
            classification=classification,
            international_designator=international_designator,
            epoch=epoch,
            mean_motion_rev_day=mean_motion,
            eccentricity=eccentricity,
            inclination_deg=inclination,
            raan_deg=raan,
            arg_perigee_deg=arg_perigee,
            mean_anomaly_deg=mean_anomaly,
            bstar=bstar,
            mean_motion_dot=mean_motion_dot,
            mean_motion_ddot=mean_motion_ddot,
            element_set_number=element_set_number,
            revolution_number=revolution_number,
        )

    # -- generation -------------------------------------------------------

    @classmethod
    def from_elements(
        cls,
        elements: KeplerianElements,
        epoch: datetime,
        name: str = "",
        satellite_number: int = 1,
        bstar: float = 0.0,
    ) -> "TwoLineElement":
        """Build a synthetic TLE from Keplerian elements at a given epoch."""
        mean_motion_rev_day = (
            elements.mean_motion_rad_s * constants.SECONDS_PER_DAY / (2.0 * math.pi)
        )
        return cls(
            name=name,
            satellite_number=satellite_number,
            classification="U",
            international_designator="00000A",
            epoch=epoch,
            mean_motion_rev_day=mean_motion_rev_day,
            eccentricity=elements.eccentricity,
            inclination_deg=elements.inclination_deg,
            raan_deg=elements.raan_deg,
            arg_perigee_deg=elements.arg_perigee_deg,
            mean_anomaly_deg=elements.mean_anomaly_deg,
            bstar=bstar,
        )

    def to_elements(self) -> KeplerianElements:
        """Convert back to Keplerian elements (semi-major axis from mean motion)."""
        mean_motion_rad_s = self.mean_motion_rev_day * 2.0 * math.pi / constants.SECONDS_PER_DAY
        semi_major_axis = (constants.EARTH_MU_KM3_S2 / mean_motion_rad_s**2) ** (1.0 / 3.0)
        return KeplerianElements(
            semi_major_axis_km=semi_major_axis,
            eccentricity=self.eccentricity,
            inclination_deg=self.inclination_deg,
            raan_deg=self.raan_deg,
            arg_perigee_deg=self.arg_perigee_deg,
            mean_anomaly_deg=self.mean_anomaly_deg,
        )

    def lines(self) -> tuple[str, str]:
        """Render the TLE as its two checksummed 69-character lines."""
        epoch_year = self.epoch.year % 100
        start_of_year = datetime(self.epoch.year, 1, 1)
        epoch_day = (self.epoch - start_of_year).total_seconds() / constants.SECONDS_PER_DAY + 1.0
        ndot_sign = "-" if self.mean_motion_dot < 0 else " "
        ndot = ndot_sign + f"{abs(self.mean_motion_dot):.8f}"[1:]
        line1 = (
            f"1 {self.satellite_number:05d}{self.classification[:1]} "
            f"{self.international_designator:<8s} "
            f"{epoch_year:02d}{epoch_day:012.8f} "
            f"{ndot:>10s} "
            f"{_format_exponential(self.mean_motion_ddot)} "
            f"{_format_exponential(self.bstar)} 0 "
            f"{self.element_set_number:4d}"
        )
        ecc_field = f"{self.eccentricity:.7f}"[2:9]
        line2 = (
            f"2 {self.satellite_number:05d} "
            f"{self.inclination_deg:8.4f} "
            f"{self.raan_deg:8.4f} "
            f"{ecc_field} "
            f"{self.arg_perigee_deg:8.4f} "
            f"{self.mean_anomaly_deg:8.4f} "
            f"{self.mean_motion_rev_day:11.8f}"
            f"{self.revolution_number:5d}"
        )
        line1 = f"{line1:<68s}"[:68]
        line2 = f"{line2:<68s}"[:68]
        return line1 + str(_checksum(line1)), line2 + str(_checksum(line2))

    @property
    def period_s(self) -> float:
        """Orbital period in seconds."""
        return constants.SECONDS_PER_DAY / self.mean_motion_rev_day
