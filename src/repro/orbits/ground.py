"""Ground stations: fixed points on the Earth surface that uplink to satellites."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.orbits.coordinates import ecef_to_eci, geodetic_to_ecef


@dataclass(frozen=True)
class GroundStation:
    """A ground station (or ground-based client/server) at a geodetic location."""

    name: str
    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0

    def __post_init__(self):
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 360.0:
            raise ValueError(f"longitude out of range: {self.longitude_deg}")

    @property
    def position_ecef(self) -> np.ndarray:
        """Earth-fixed position [km]."""
        return geodetic_to_ecef(self.latitude_deg, self.longitude_deg, self.altitude_km)

    def position_eci(self, gmst_rad: float) -> np.ndarray:
        """Inertial position [km] at a given Greenwich sidereal time."""
        return ecef_to_eci(self.position_ecef, gmst_rad)

    @property
    def dns_name(self) -> str:
        """DNS-style name of the ground station machine (``gst.<name>.celestial``)."""
        safe = self.name.lower().replace(" ", "-").replace(",", "")
        return f"gst.{safe}.celestial"
