"""Orbital mechanics substrate: time, coordinates, Kepler, TLE, SGP4, shells.

Celestial's Constellation Calculation component is based on the SILLEO-SCNS
simulator extended with SGP4 (§3.1).  This package provides the equivalent
building blocks from scratch: astronomical time utilities, coordinate
transformations, two-body/Kepler propagation, TLE handling, an SGP4-class
simplified-perturbations propagator, Walker constellation shells and ground
stations, and visibility computations (elevation, line of sight).
"""

from repro.orbits import constants
from repro.orbits.time_utils import Epoch, gmst_rad, julian_date
from repro.orbits.coordinates import (
    GEOCENTRIC_LATITUDE_MARGIN_DEG,
    ecef_to_eci,
    ecef_to_geocentric_latlon,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    subsatellite_point,
)
from repro.orbits.kepler import (
    KeplerianElements,
    KeplerPropagator,
    mean_motion_from_semi_major_axis,
    semi_major_axis_from_mean_motion,
    solve_kepler,
)
from repro.orbits.tle import TwoLineElement
from repro.orbits.sgp4 import SGP4Error, SGP4Propagator
from repro.orbits.shells import Satellite, Shell, ShellGeometry
from repro.orbits.ground import GroundStation
from repro.orbits.mobility import MovingGroundStation, Waypoint
from repro.orbits.visibility import (
    elevation_angle_deg,
    ground_station_visible,
    isl_line_of_sight,
    slant_range_km,
)

__all__ = [
    "Epoch",
    "GroundStation",
    "KeplerPropagator",
    "KeplerianElements",
    "MovingGroundStation",
    "SGP4Error",
    "SGP4Propagator",
    "Satellite",
    "Shell",
    "ShellGeometry",
    "TwoLineElement",
    "Waypoint",
    "constants",
    "ecef_to_eci",
    "GEOCENTRIC_LATITUDE_MARGIN_DEG",
    "ecef_to_geocentric_latlon",
    "ecef_to_geodetic",
    "eci_to_ecef",
    "elevation_angle_deg",
    "geodetic_to_ecef",
    "gmst_rad",
    "ground_station_visible",
    "isl_line_of_sight",
    "julian_date",
    "mean_motion_from_semi_major_axis",
    "semi_major_axis_from_mean_motion",
    "slant_range_km",
    "solve_kepler",
    "subsatellite_point",
]
