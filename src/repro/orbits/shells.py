"""Constellation shells: Walker-style shells of evenly-spaced orbital planes.

A LEO constellation comprises *shells*, each at its own altitude and
inclination.  Each shell consists of a number of orbital planes evenly spaced
around the equator, and each plane contains satellites evenly spaced along
the same orbit (§2.1).  A Walker *delta* shell spreads the ascending nodes of
its planes over 360°; a Walker *star* shell (such as Iridium) spreads them
over 180° so that the first and last planes are counter-rotating "seam"
neighbours (§5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Literal

import numpy as np

from repro.orbits import constants
from repro.orbits.kepler import (
    KeplerianElements,
    KeplerPropagator,
    j2_secular_rates,
    mean_motion_from_semi_major_axis,
)
from repro.orbits.sgp4 import SGP4Propagator
from repro.orbits.tle import TwoLineElement


@dataclass(frozen=True)
class Satellite:
    """Identity of one satellite within a shell.

    ``identifier`` is the flat index within its shell; Celestial's DNS names
    satellites as ``<identifier>.<shell>.celestial`` (§3.2).
    """

    shell_index: int
    identifier: int
    plane: int
    index_in_plane: int

    @property
    def name(self) -> str:
        """DNS-style name of the satellite machine."""
        return f"{self.identifier}.{self.shell_index}.celestial"


@dataclass(frozen=True)
class ShellGeometry:
    """Static orbital geometry of one constellation shell."""

    planes: int
    satellites_per_plane: int
    altitude_km: float
    inclination_deg: float
    arc_of_ascending_nodes_deg: float = 360.0
    phase_offset_fraction: float = 0.5
    eccentricity: float = 0.0
    raan_offset_deg: float = 0.0

    def __post_init__(self):
        if self.planes <= 0 or self.satellites_per_plane <= 0:
            raise ValueError("planes and satellites_per_plane must be positive")
        if self.altitude_km <= 0:
            raise ValueError("altitude must be positive")
        if not 0.0 < self.arc_of_ascending_nodes_deg <= 360.0:
            raise ValueError("arc of ascending nodes must be in (0, 360] degrees")

    @property
    def total_satellites(self) -> int:
        """Number of satellites in the shell."""
        return self.planes * self.satellites_per_plane

    @property
    def semi_major_axis_km(self) -> float:
        """Semi-major axis of the (circular) shell orbit."""
        return constants.EARTH_RADIUS_KM + self.altitude_km

    @property
    def period_s(self) -> float:
        """Orbital period of the shell [s]."""
        return 2.0 * math.pi / mean_motion_from_semi_major_axis(self.semi_major_axis_km)

    @property
    def is_polar_star(self) -> bool:
        """Whether the shell is a Walker-star constellation (Iridium-like)."""
        return self.arc_of_ascending_nodes_deg <= 180.0


class Shell:
    """A propagatable shell of satellites.

    ``propagator`` selects the underlying model: ``"kepler_j2"`` uses the
    vectorised circular-orbit propagator with secular J2 drift (fast enough
    for full Starlink-scale shells), ``"sgp4"`` uses one scalar SGP4 instance
    per satellite (the model named in the paper).
    """

    def __init__(
        self,
        geometry: ShellGeometry,
        shell_index: int = 0,
        propagator: Literal["kepler_j2", "sgp4"] = "kepler_j2",
        bstar: float = 0.0,
    ):
        self.geometry = geometry
        self.shell_index = shell_index
        self.propagator_kind = propagator
        self.bstar = bstar
        self.satellites: list[Satellite] = [
            Satellite(
                shell_index=shell_index,
                identifier=plane * geometry.satellites_per_plane + index,
                plane=plane,
                index_in_plane=index,
            )
            for plane in range(geometry.planes)
            for index in range(geometry.satellites_per_plane)
        ]
        self._raan_deg, self._anomaly_deg = self._initial_angles()
        self._sgp4: list[SGP4Propagator] | None = None
        if propagator == "sgp4":
            self._sgp4 = [self._sgp4_for(sat) for sat in self.satellites]
        elif propagator != "kepler_j2":
            raise ValueError(f"unknown propagator kind: {propagator!r}")
        incl = math.radians(geometry.inclination_deg)
        self._raan_dot, argp_dot, m_dot_extra = j2_secular_rates(
            geometry.semi_major_axis_km, geometry.eccentricity, incl
        )
        # For (near-)circular orbits the argument of latitude advances at the
        # sum of the mean-anomaly and argument-of-perigee secular rates.
        self._mean_motion = (
            mean_motion_from_semi_major_axis(geometry.semi_major_axis_km)
            + m_dot_extra
            + argp_dot
        )

    def __len__(self) -> int:
        return len(self.satellites)

    def __iter__(self) -> Iterator[Satellite]:
        return iter(self.satellites)

    # -- element construction --------------------------------------------

    def _initial_angles(self) -> tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        planes = np.array([sat.plane for sat in self.satellites], dtype=float)
        indices = np.array([sat.index_in_plane for sat in self.satellites], dtype=float)
        raan = (
            geometry.raan_offset_deg
            + planes * geometry.arc_of_ascending_nodes_deg / geometry.planes
        )
        in_plane_spacing = 360.0 / geometry.satellites_per_plane
        phase_shift = geometry.phase_offset_fraction * in_plane_spacing / geometry.planes
        anomaly = indices * in_plane_spacing + planes * phase_shift
        return raan % 360.0, anomaly % 360.0

    def elements_for(self, satellite: Satellite) -> KeplerianElements:
        """Keplerian elements of one satellite at the shell epoch."""
        flat = satellite.identifier
        return KeplerianElements(
            semi_major_axis_km=self.geometry.semi_major_axis_km,
            eccentricity=self.geometry.eccentricity,
            inclination_deg=self.geometry.inclination_deg,
            raan_deg=float(self._raan_deg[flat]),
            arg_perigee_deg=0.0,
            mean_anomaly_deg=float(self._anomaly_deg[flat]),
        )

    def _sgp4_for(self, satellite: Satellite) -> SGP4Propagator:
        from datetime import datetime

        tle = TwoLineElement.from_elements(
            self.elements_for(satellite),
            epoch=datetime(2022, 1, 1),
            name=satellite.name,
            satellite_number=satellite.identifier + 1,
            bstar=self.bstar,
        )
        return SGP4Propagator(tle)

    def kepler_propagator_for(self, satellite: Satellite) -> KeplerPropagator:
        """Scalar Kepler+J2 propagator for one satellite (mainly for tests)."""
        return KeplerPropagator(self.elements_for(satellite), include_j2=True)

    # -- propagation ------------------------------------------------------

    def positions_eci(self, t_seconds: float) -> np.ndarray:
        """ECI positions [km] of all satellites at ``t_seconds``, shape (N, 3)."""
        if self._sgp4 is not None:
            return np.array([prop.position_eci(t_seconds) for prop in self._sgp4])
        geometry = self.geometry
        a = geometry.semi_major_axis_km
        incl = math.radians(geometry.inclination_deg)
        raan = np.radians(self._raan_deg) + self._raan_dot * t_seconds
        anomaly = np.radians(self._anomaly_deg) + self._mean_motion * t_seconds
        cos_u, sin_u = np.cos(anomaly), np.sin(anomaly)
        cos_o, sin_o = np.cos(raan), np.sin(raan)
        cos_i, sin_i = math.cos(incl), math.sin(incl)
        x = a * (cos_u * cos_o - sin_u * sin_o * cos_i)
        y = a * (cos_u * sin_o + sin_u * cos_o * cos_i)
        z = a * (sin_u * sin_i)
        return np.stack([x, y, z], axis=-1)

    def velocity_km_s(self) -> float:
        """Orbital speed of satellites in the shell [km/s] (circular orbit)."""
        return math.sqrt(constants.EARTH_MU_KM3_S2 / self.geometry.semi_major_axis_km)
