"""Mobile ground stations: ships, planes and other moving user terminals.

Ground station equipment may be mobile, e.g. installed on a plane or a ship,
which must be taken into account when selecting uplink satellites (§6.5).
A :class:`MovingGroundStation` interpolates a great-circle-ish track between
waypoints so the constellation calculation can be queried with the station's
position at any simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.orbits.coordinates import geodetic_to_ecef, great_circle_distance_km
from repro.orbits.ground import GroundStation


@dataclass(frozen=True)
class Waypoint:
    """One point of a ground track: a position reached at a given time."""

    time_s: float
    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0


class MovingGroundStation:
    """A ground station that follows a piecewise-linear geodetic track."""

    def __init__(self, name: str, waypoints: list[Waypoint]):
        if len(waypoints) < 2:
            raise ValueError("at least two waypoints are required")
        times = [waypoint.time_s for waypoint in waypoints]
        if any(later <= earlier for earlier, later in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        self.name = name
        self.waypoints = list(waypoints)

    def _segment(self, time_s: float) -> tuple[Waypoint, Waypoint, float]:
        waypoints = self.waypoints
        if time_s <= waypoints[0].time_s:
            return waypoints[0], waypoints[0], 0.0
        if time_s >= waypoints[-1].time_s:
            return waypoints[-1], waypoints[-1], 0.0
        for start, end in zip(waypoints, waypoints[1:]):
            if start.time_s <= time_s <= end.time_s:
                fraction = (time_s - start.time_s) / (end.time_s - start.time_s)
                return start, end, fraction
        raise AssertionError("unreachable: waypoint segments cover the time range")

    def position_geodetic(self, time_s: float) -> tuple[float, float, float]:
        """Latitude, longitude [deg] and altitude [km] at a simulation time."""
        start, end, fraction = self._segment(time_s)
        longitude_start = start.longitude_deg
        longitude_end = end.longitude_deg
        # Interpolate longitudes the short way around the antimeridian.
        if longitude_end - longitude_start > 180.0:
            longitude_end -= 360.0
        elif longitude_start - longitude_end > 180.0:
            longitude_end += 360.0
        longitude = longitude_start + fraction * (longitude_end - longitude_start)
        if longitude > 180.0:
            longitude -= 360.0
        elif longitude < -180.0:
            longitude += 360.0
        latitude = start.latitude_deg + fraction * (end.latitude_deg - start.latitude_deg)
        altitude = start.altitude_km + fraction * (end.altitude_km - start.altitude_km)
        return latitude, longitude, altitude

    def position_ecef(self, time_s: float) -> np.ndarray:
        """Earth-fixed position [km] at a simulation time."""
        latitude, longitude, altitude = self.position_geodetic(time_s)
        return geodetic_to_ecef(latitude, longitude, altitude)

    def as_ground_station(self, time_s: float) -> GroundStation:
        """A static :class:`GroundStation` snapshot at a simulation time."""
        latitude, longitude, altitude = self.position_geodetic(time_s)
        return GroundStation(self.name, latitude, longitude, altitude)

    def speed_km_h(self, time_s: float, delta_s: float = 60.0) -> float:
        """Ground speed [km/h] around a simulation time."""
        lat_a, lon_a, _ = self.position_geodetic(time_s)
        lat_b, lon_b, _ = self.position_geodetic(time_s + delta_s)
        distance = great_circle_distance_km(lat_a, lon_a, lat_b, lon_b)
        return distance / delta_s * 3600.0

    def track_duration_s(self) -> float:
        """Total duration of the configured track."""
        return self.waypoints[-1].time_s - self.waypoints[0].time_s
