"""SGP4 simplified-perturbations propagator (near-Earth variant).

Celestial extends the SILLEO-SCNS constellation calculation with support for
the SGP4 model (§3.1), which accounts for perturbations from atmospheric
drag, the Earth's oblateness, and resonance effects.  This module implements
the near-Earth SGP4 algorithm (Hoots & Roehrich 1980, as consolidated by
Vallado's reference implementation) from scratch in pure Python:

* un-Kozai recovery of the mean motion,
* secular gravity (J2/J4) and drag (B*) rates,
* long-period and short-period periodic corrections,
* Kepler's equation for the sum of eccentric anomaly and argument of perigee.

The deep-space (SDP4) extension is intentionally omitted: all constellations
considered by the paper (Starlink shells at 550-1325 km, Iridium at 780 km)
orbit with periods far below the 225-minute deep-space threshold.  Requesting
propagation of a deep-space object raises :class:`SGP4Error`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.orbits import constants
from repro.orbits.tle import TwoLineElement

# Gravity model constants in SGP4 canonical units (distances in Earth radii,
# time in minutes).
_XKE = constants.XKE
_XKMPER = constants.EARTH_RADIUS_KM
_CK2 = 0.5 * constants.EARTH_J2
_CK4 = -0.375 * constants.EARTH_J4
_A3OVK2 = -constants.EARTH_J3 / _CK2
_QOMS2T = ((120.0 - 78.0) / _XKMPER) ** 4
_S = 1.0 + 78.0 / _XKMPER
_TWOPI = 2.0 * math.pi

_DEEP_SPACE_PERIOD_MIN = 225.0


class SGP4Error(RuntimeError):
    """Raised for unsupported orbits or propagation failures (e.g. decay)."""


@dataclass
class SGP4State:
    """Pre-computed initialisation constants for one satellite."""

    # mean elements at epoch (radians, rad/min, Earth radii)
    no_unkozai: float
    ecco: float
    inclo: float
    nodeo: float
    argpo: float
    mo: float
    bstar: float
    aodp: float
    # trigonometric shorthands
    cosio: float
    sinio: float
    x3thm1: float
    x1mth2: float
    x7thm1: float
    # drag coefficients
    isimp: bool
    c1: float
    c4: float
    c5: float
    d2: float
    d3: float
    d4: float
    t2cof: float
    t3cof: float
    t4cof: float
    t5cof: float
    omgcof: float
    xmcof: float
    xnodcf: float
    eta: float
    delmo: float
    sinmo: float
    # secular rates
    mdot: float
    omgdot: float
    xnodot: float
    # long-period coefficients
    xlcof: float
    aycof: float


class SGP4Propagator:
    """Propagates a single TLE with the near-Earth SGP4 model."""

    def __init__(self, tle: TwoLineElement):
        self.tle = tle
        self._state = self._initialise(tle)

    # -- initialisation ---------------------------------------------------

    @staticmethod
    def _initialise(tle: TwoLineElement) -> SGP4State:
        no_kozai = tle.mean_motion_rev_day * _TWOPI / constants.MINUTES_PER_DAY
        if no_kozai <= 0:
            raise SGP4Error("mean motion must be positive")
        period_min = _TWOPI / no_kozai
        if period_min >= _DEEP_SPACE_PERIOD_MIN:
            raise SGP4Error(
                "deep-space orbits (period >= 225 min) are not supported by the "
                "near-Earth SGP4 implementation"
            )
        ecco = tle.eccentricity
        inclo = math.radians(tle.inclination_deg)
        nodeo = math.radians(tle.raan_deg)
        argpo = math.radians(tle.arg_perigee_deg)
        mo = math.radians(tle.mean_anomaly_deg)
        bstar = tle.bstar

        cosio = math.cos(inclo)
        sinio = math.sin(inclo)
        theta2 = cosio * cosio
        x3thm1 = 3.0 * theta2 - 1.0
        x1mth2 = 1.0 - theta2
        x7thm1 = 7.0 * theta2 - 1.0
        eosq = ecco * ecco
        betao2 = 1.0 - eosq
        betao = math.sqrt(betao2)

        # Un-Kozai the mean motion.
        a1 = (_XKE / no_kozai) ** (2.0 / 3.0)
        del1 = 1.5 * _CK2 * x3thm1 / (a1 * a1 * betao * betao2)
        ao = a1 * (1.0 - del1 / 3.0 - del1 * del1 - 134.0 / 81.0 * del1**3)
        delo = 1.5 * _CK2 * x3thm1 / (ao * ao * betao * betao2)
        no_unkozai = no_kozai / (1.0 + delo)
        aodp = ao / (1.0 - delo)

        perigee_km = (aodp * (1.0 - ecco) - 1.0) * _XKMPER
        if perigee_km < 0.0:
            raise SGP4Error("orbit perigee is below the Earth surface")

        # Adjust s4/qoms24 for low-perigee orbits.
        s4 = _S
        qoms24 = _QOMS2T
        if perigee_km < 156.0:
            s4 = perigee_km - 78.0
            if perigee_km < 98.0:
                s4 = 20.0
            qoms24 = ((120.0 - s4) / _XKMPER) ** 4
            s4 = s4 / _XKMPER + 1.0

        isimp = perigee_km < 220.0

        pinvsq = 1.0 / (aodp * aodp * betao2 * betao2)
        tsi = 1.0 / (aodp - s4)
        eta = aodp * ecco * tsi
        etasq = eta * eta
        eeta = ecco * eta
        psisq = abs(1.0 - etasq)
        coef = qoms24 * tsi**4
        coef1 = coef / psisq**3.5
        c2 = coef1 * no_unkozai * (
            aodp * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
            + 0.75
            * _CK2
            * tsi
            / psisq
            * x3thm1
            * (8.0 + 3.0 * etasq * (8.0 + etasq))
        )
        c1 = bstar * c2
        c3 = 0.0
        if ecco > 1.0e-4:
            c3 = coef * tsi * _A3OVK2 * no_unkozai * sinio / ecco
        c4 = (
            2.0
            * no_unkozai
            * coef1
            * aodp
            * betao2
            * (
                eta * (2.0 + 0.5 * etasq)
                + ecco * (0.5 + 2.0 * etasq)
                - 2.0
                * _CK2
                * tsi
                / (aodp * psisq)
                * (
                    -3.0 * x3thm1 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                    + 0.75
                    * x1mth2
                    * (2.0 * etasq - eeta * (1.0 + etasq))
                    * math.cos(2.0 * argpo)
                )
            )
        )
        c5 = 2.0 * coef1 * aodp * betao2 * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq)

        temp1 = 1.5 * constants.EARTH_J2 * pinvsq * no_unkozai
        temp2 = 0.5 * temp1 * constants.EARTH_J2 * pinvsq
        temp3 = -0.46875 * constants.EARTH_J4 * pinvsq * pinvsq * no_unkozai
        theta4 = theta2 * theta2
        mdot = (
            no_unkozai
            + 0.5 * temp1 * betao * x3thm1
            + 0.0625 * temp2 * betao * (13.0 - 78.0 * theta2 + 137.0 * theta4)
        )
        omgdot = (
            -0.5 * temp1 * (1.0 - 5.0 * theta2)
            + 0.0625 * temp2 * (7.0 - 114.0 * theta2 + 395.0 * theta4)
            + temp3 * (3.0 - 36.0 * theta2 + 49.0 * theta4)
        )
        xhdot1 = -temp1 * cosio
        xnodot = (
            xhdot1
            + (0.5 * temp2 * (4.0 - 19.0 * theta2) + 2.0 * temp3 * (3.0 - 7.0 * theta2))
            * cosio
        )
        omgcof = bstar * c3 * math.cos(argpo)
        xmcof = 0.0
        if ecco > 1.0e-4:
            xmcof = -(2.0 / 3.0) * coef * bstar / eeta
        xnodcf = 3.5 * betao2 * xhdot1 * c1
        t2cof = 1.5 * c1

        d2 = d3 = d4 = 0.0
        t3cof = t4cof = t5cof = 0.0
        if not isimp:
            c1sq = c1 * c1
            d2 = 4.0 * aodp * tsi * c1sq
            temp = d2 * tsi * c1 / 3.0
            d3 = (17.0 * aodp + s4) * temp
            d4 = 0.5 * temp * aodp * tsi * (221.0 * aodp + 31.0 * s4) * c1
            t3cof = d2 + 2.0 * c1sq
            t4cof = 0.25 * (3.0 * d3 + c1 * (12.0 * d2 + 10.0 * c1sq))
            t5cof = 0.2 * (
                3.0 * d4 + 12.0 * c1 * d3 + 6.0 * d2 * d2 + 15.0 * c1sq * (2.0 * d2 + c1sq)
            )

        denominator = 1.0 + cosio
        if abs(denominator) < 1.5e-12:
            denominator = 1.5e-12
        xlcof = 0.125 * _A3OVK2 * sinio * (3.0 + 5.0 * cosio) / denominator
        aycof = 0.25 * _A3OVK2 * sinio
        delmo = (1.0 + eta * math.cos(mo)) ** 3
        sinmo = math.sin(mo)

        return SGP4State(
            no_unkozai=no_unkozai,
            ecco=ecco,
            inclo=inclo,
            nodeo=nodeo,
            argpo=argpo,
            mo=mo,
            bstar=bstar,
            aodp=aodp,
            cosio=cosio,
            sinio=sinio,
            x3thm1=x3thm1,
            x1mth2=x1mth2,
            x7thm1=x7thm1,
            isimp=isimp,
            c1=c1,
            c4=c4,
            c5=c5,
            d2=d2,
            d3=d3,
            d4=d4,
            t2cof=t2cof,
            t3cof=t3cof,
            t4cof=t4cof,
            t5cof=t5cof,
            omgcof=omgcof,
            xmcof=xmcof,
            xnodcf=xnodcf,
            eta=eta,
            delmo=delmo,
            sinmo=sinmo,
            mdot=mdot,
            omgdot=omgdot,
            xnodot=xnodot,
            xlcof=xlcof,
            aycof=aycof,
        )

    # -- propagation ------------------------------------------------------

    def propagate_minutes(self, tsince_min: float) -> tuple[np.ndarray, np.ndarray]:
        """Position [km] and velocity [km/s] ``tsince_min`` minutes after epoch."""
        s = self._state

        xmdf = s.mo + s.mdot * tsince_min
        omgadf = s.argpo + s.omgdot * tsince_min
        xnoddf = s.nodeo + s.xnodot * tsince_min
        omega = omgadf
        xmp = xmdf
        tsq = tsince_min * tsince_min
        xnode = xnoddf + s.xnodcf * tsq
        tempa = 1.0 - s.c1 * tsince_min
        tempe = s.bstar * s.c4 * tsince_min
        templ = s.t2cof * tsq

        if not s.isimp:
            delomg = s.omgcof * tsince_min
            delm = s.xmcof * ((1.0 + s.eta * math.cos(xmdf)) ** 3 - s.delmo)
            temp_periodic = delomg + delm
            xmp = xmdf + temp_periodic
            omega = omgadf - temp_periodic
            tcube = tsq * tsince_min
            tfour = tsince_min * tcube
            tempa = tempa - s.d2 * tsq - s.d3 * tcube - s.d4 * tfour
            tempe = tempe + s.bstar * s.c5 * (math.sin(xmp) - s.sinmo)
            templ = templ + s.t3cof * tcube + tfour * (s.t4cof + tsince_min * s.t5cof)

        if tempa < 0.0:
            raise SGP4Error("satellite has decayed (drag term exceeded orbit energy)")
        a = s.aodp * tempa * tempa
        e = s.ecco - tempe
        if e < 1.0e-6:
            e = 1.0e-6
        if e >= 1.0 or a * (1.0 - e) < 1.0:
            raise SGP4Error("satellite has decayed (perigee below Earth surface)")
        xl = xmp + omega + xnode + s.no_unkozai * templ
        beta2 = 1.0 - e * e
        xn = _XKE / a**1.5

        # Long-period periodics.
        axn = e * math.cos(omega)
        temp = 1.0 / (a * beta2)
        xll = temp * s.xlcof * axn
        aynl = temp * s.aycof
        xlt = xl + xll
        ayn = e * math.sin(omega) + aynl

        # Solve Kepler's equation for (E + omega).
        u = (xlt - xnode) % _TWOPI
        eo1 = u
        for _ in range(10):
            sineo1 = math.sin(eo1)
            coseo1 = math.cos(eo1)
            tem5 = (u - ayn * coseo1 + axn * sineo1 - eo1) / (
                1.0 - coseo1 * axn - sineo1 * ayn
            )
            if abs(tem5) >= 0.95:
                tem5 = math.copysign(0.95, tem5)
            eo1 += tem5
            if abs(tem5) < 1.0e-12:
                break
        sineo1 = math.sin(eo1)
        coseo1 = math.cos(eo1)

        # Short-period preliminary quantities.
        ecose = axn * coseo1 + ayn * sineo1
        esine = axn * sineo1 - ayn * coseo1
        elsq = axn * axn + ayn * ayn
        temp = 1.0 - elsq
        pl = a * temp
        r = a * (1.0 - ecose)
        rdot = _XKE * math.sqrt(a) * esine / r
        rfdot = _XKE * math.sqrt(pl) / r
        betal = math.sqrt(temp)
        temp3 = esine / (1.0 + betal)
        cosu = a / r * (coseo1 - axn + ayn * temp3)
        sinu = a / r * (sineo1 - ayn - axn * temp3)
        u_angle = math.atan2(sinu, cosu)
        sin2u = 2.0 * sinu * cosu
        cos2u = 2.0 * cosu * cosu - 1.0
        temp = 1.0 / pl
        temp1 = _CK2 * temp
        temp2 = temp1 * temp

        # Short-period periodics.
        rk = r * (1.0 - 1.5 * temp2 * betal * s.x3thm1) + 0.5 * temp1 * s.x1mth2 * cos2u
        if rk < 1.0:
            raise SGP4Error("satellite has decayed (radius below Earth surface)")
        uk = u_angle - 0.25 * temp2 * s.x7thm1 * sin2u
        xnodek = xnode + 1.5 * temp2 * s.cosio * sin2u
        xinck = s.inclo + 1.5 * temp2 * s.cosio * s.sinio * cos2u
        rdotk = rdot - xn * temp1 * s.x1mth2 * sin2u
        rfdotk = rfdot + xn * temp1 * (s.x1mth2 * cos2u + 1.5 * s.x3thm1)

        # Orientation vectors and final position/velocity.
        sinuk = math.sin(uk)
        cosuk = math.cos(uk)
        sinik = math.sin(xinck)
        cosik = math.cos(xinck)
        sinnok = math.sin(xnodek)
        cosnok = math.cos(xnodek)
        xmx = -sinnok * cosik
        xmy = cosnok * cosik
        ux = xmx * sinuk + cosnok * cosuk
        uy = xmy * sinuk + sinnok * cosuk
        uz = sinik * sinuk
        vx = xmx * cosuk - cosnok * sinuk
        vy = xmy * cosuk - sinnok * sinuk
        vz = sinik * cosuk

        position = np.array([rk * ux, rk * uy, rk * uz]) * _XKMPER
        velocity = (
            np.array(
                [
                    rdotk * ux + rfdotk * vx,
                    rdotk * uy + rfdotk * vy,
                    rdotk * uz + rfdotk * vz,
                ]
            )
            * _XKMPER
            / 60.0
        )
        return position, velocity

    def position_eci(self, t_seconds: float) -> np.ndarray:
        """ECI position [km] ``t_seconds`` after the TLE epoch."""
        position, _ = self.propagate_minutes(t_seconds / 60.0)
        return position

    def position_velocity_eci(self, t_seconds: float) -> tuple[np.ndarray, np.ndarray]:
        """ECI position [km] and velocity [km/s] ``t_seconds`` after the TLE epoch."""
        return self.propagate_minutes(t_seconds / 60.0)
