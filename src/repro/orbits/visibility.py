"""Visibility computations: elevation angles and inter-satellite line of sight.

Celestial's constellation calculation uses two visibility rules (§3.1):

* an ISL is only usable while the line of sight between the two satellites
  does not dip into the atmosphere (refraction would break the laser link);
* a ground station can only communicate with satellites above a configurable
  minimum elevation angle over the horizon.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants


def slant_range_km(position_a: np.ndarray, position_b: np.ndarray) -> np.ndarray:
    """Euclidean distance [km] between two positions (broadcasts over rows)."""
    difference = np.asarray(position_b, dtype=float) - np.asarray(position_a, dtype=float)
    return np.linalg.norm(difference, axis=-1)


def elevation_angle_deg(
    ground_position: np.ndarray, satellite_position: np.ndarray
) -> np.ndarray:
    """Elevation [deg] of a satellite above the local horizon of a ground point.

    Both positions must be expressed in the same frame at the same instant.
    """
    ground = np.asarray(ground_position, dtype=float)
    satellite = np.asarray(satellite_position, dtype=float)
    to_satellite = satellite - ground
    ground_norm = np.linalg.norm(ground, axis=-1)
    range_norm = np.linalg.norm(to_satellite, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        sin_elevation = np.sum(to_satellite * ground, axis=-1) / (range_norm * ground_norm)
    sin_elevation = np.clip(sin_elevation, -1.0, 1.0)
    return np.degrees(np.arcsin(sin_elevation))


def ground_station_visible(
    ground_position: np.ndarray,
    satellite_position: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> np.ndarray:
    """Whether a satellite is above the minimum elevation for a ground station."""
    return elevation_angle_deg(ground_position, satellite_position) >= min_elevation_deg


def isl_line_of_sight(
    position_a: np.ndarray,
    position_b: np.ndarray,
    grazing_altitude_km: float = constants.ATMOSPHERE_GRAZING_ALTITUDE_KM,
) -> np.ndarray:
    """Whether the segment between two satellites clears the atmosphere.

    The link is considered blocked when the closest approach of the segment
    to the Earth's centre falls below ``earth_radius + grazing_altitude`` and
    the closest point lies between the two satellites.
    """
    a = np.asarray(position_a, dtype=float)
    b = np.asarray(position_b, dtype=float)
    ab = b - a
    ab_sq = np.sum(ab * ab, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.clip(-np.sum(a * ab, axis=-1) / np.where(ab_sq == 0, 1.0, ab_sq), 0.0, 1.0)
    closest = a + ab * t[..., None] if np.ndim(t) else a + ab * t
    closest_distance = np.linalg.norm(closest, axis=-1)
    limit = constants.EARTH_RADIUS_KM + grazing_altitude_km
    return closest_distance >= limit


def max_isl_length_km(
    altitude_a_km: float,
    altitude_b_km: float,
    grazing_altitude_km: float = constants.ATMOSPHERE_GRAZING_ALTITUDE_KM,
) -> float:
    """Longest possible ISL between two altitudes that still clears the atmosphere."""
    limit = constants.EARTH_RADIUS_KM + grazing_altitude_km
    radius_a = constants.EARTH_RADIUS_KM + altitude_a_km
    radius_b = constants.EARTH_RADIUS_KM + altitude_b_km
    return float(np.sqrt(radius_a**2 - limit**2) + np.sqrt(radius_b**2 - limit**2))
