"""Visibility computations: elevation angles and inter-satellite line of sight.

Celestial's constellation calculation uses two visibility rules (§3.1):

* an ISL is only usable while the line of sight between the two satellites
  does not dip into the atmosphere (refraction would break the laser link);
* a ground station can only communicate with satellites above a configurable
  minimum elevation angle over the horizon.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants


def _row_norm(vectors: np.ndarray) -> np.ndarray:
    """`sqrt(sum(x², axis=-1))` — same reduction as ``np.linalg.norm`` (and
    therefore bitwise identical) without its gufunc dispatch overhead,
    which is measurable at the per-epoch call rates of the hot path."""
    return np.sqrt(np.add.reduce(vectors * vectors, axis=-1))


def slant_range_km(position_a: np.ndarray, position_b: np.ndarray) -> np.ndarray:
    """Euclidean distance [km] between two positions (broadcasts over rows)."""
    difference = np.asarray(position_b, dtype=float) - np.asarray(position_a, dtype=float)
    return _row_norm(difference)


def elevation_angle_deg(
    ground_position: np.ndarray, satellite_position: np.ndarray
) -> np.ndarray:
    """Elevation [deg] of a satellite above the local horizon of a ground point.

    Both positions must be expressed in the same frame at the same instant.
    """
    ground = np.asarray(ground_position, dtype=float)
    satellite = np.asarray(satellite_position, dtype=float)
    to_satellite = satellite - ground
    ground_norm = _row_norm(ground)
    range_norm = _row_norm(to_satellite)
    with np.errstate(invalid="ignore", divide="ignore"):
        sin_elevation = np.sum(to_satellite * ground, axis=-1) / (range_norm * ground_norm)
    sin_elevation = np.clip(sin_elevation, -1.0, 1.0)
    return np.degrees(np.arcsin(sin_elevation))


def elevation_angle_matrix_deg(
    ground_positions: np.ndarray, satellite_positions: np.ndarray
) -> np.ndarray:
    """Elevation matrix [deg] of shape ``(G, N)`` for G ground points and N satellites.

    One batched matrix operation over the stacked GST×satellite position
    array, replacing G separate :func:`elevation_angle_deg` calls on the
    constellation-snapshot hot path.  Row ``g`` is bitwise identical to
    ``elevation_angle_deg(ground_positions[g], satellite_positions)``: the
    broadcasting performs exactly the same elementwise operations in the same
    order, which the differential-update equivalence suite relies on.
    """
    ground = np.asarray(ground_positions, dtype=float).reshape(-1, 1, 3)
    satellites = np.asarray(satellite_positions, dtype=float)
    return elevation_angle_deg(ground, satellites)


def ground_station_visible(
    ground_position: np.ndarray,
    satellite_position: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> np.ndarray:
    """Whether a satellite is above the minimum elevation for a ground station."""
    return elevation_angle_deg(ground_position, satellite_position) >= min_elevation_deg


def isl_closest_approach_km(
    position_a: np.ndarray, position_b: np.ndarray
) -> np.ndarray:
    """Closest approach [km] of the segment between two satellites to Earth's centre.

    This is the quantity :func:`isl_line_of_sight` thresholds against the
    atmosphere-grazing limit.  It is exposed separately because the
    differential update path caches it between epochs: the function is
    1-Lipschitz in each endpoint position, so between two epochs the value
    can move by at most the largest endpoint displacement — a certified
    margin that lets steady links skip the recomputation entirely.
    """
    a = np.asarray(position_a, dtype=float)
    b = np.asarray(position_b, dtype=float)
    ab = b - a
    ab_sq = np.sum(ab * ab, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.clip(-np.sum(a * ab, axis=-1) / np.where(ab_sq == 0, 1.0, ab_sq), 0.0, 1.0)
    closest = a + ab * t[..., None] if np.ndim(t) else a + ab * t
    return _row_norm(closest)


def isl_line_of_sight(
    position_a: np.ndarray,
    position_b: np.ndarray,
    grazing_altitude_km: float = constants.ATMOSPHERE_GRAZING_ALTITUDE_KM,
) -> np.ndarray:
    """Whether the segment between two satellites clears the atmosphere.

    The link is considered blocked when the closest approach of the segment
    to the Earth's centre falls below ``earth_radius + grazing_altitude`` and
    the closest point lies between the two satellites.
    """
    limit = constants.EARTH_RADIUS_KM + grazing_altitude_km
    return isl_closest_approach_km(position_a, position_b) >= limit


def max_isl_length_km(
    altitude_a_km: float,
    altitude_b_km: float,
    grazing_altitude_km: float = constants.ATMOSPHERE_GRAZING_ALTITUDE_KM,
) -> float:
    """Longest possible ISL between two altitudes that still clears the atmosphere."""
    limit = constants.EARTH_RADIUS_KM + grazing_altitude_km
    radius_a = constants.EARTH_RADIUS_KM + altitude_a_km
    radius_b = constants.EARTH_RADIUS_KM + altitude_b_km
    return float(np.sqrt(radius_a**2 - limit**2) + np.sqrt(radius_b**2 - limit**2))
