"""Coordinate frames and transformations.

Two frames are used:

* **ECI** (Earth-centred inertial, km): satellite propagation output.
* **ECEF** (Earth-centred Earth-fixed, km): ground stations and
  sub-satellite points.

The transformation between the two is a rotation about the z-axis by the
Greenwich mean sidereal time.  Geodetic conversions use the WGS-84 ellipsoid.
All functions accept and return NumPy arrays and broadcast over leading
dimensions so whole constellations can be transformed at once.
"""

from __future__ import annotations

import math

import numpy as np

from repro.orbits import constants

_WGS84_A = 6378.137
_WGS84_F = 1.0 / 298.257223563
_WGS84_E2 = _WGS84_F * (2.0 - _WGS84_F)

#: WGS-84 equatorial (semi-major) radius [km] — the largest radius of the
#: ellipsoid, so any point at least this far from the centre is at or
#: above the surface everywhere on Earth.
WGS84_EQUATORIAL_RADIUS_KM = _WGS84_A

#: Certified upper bound on |geodetic − geocentric| latitude [deg] for any
#: point at or above the WGS-84 surface.  With ``tan ψ = k·tan φ`` and
#: ``k = 1 − e²·N/(N + h) ∈ [1 − e², 1]`` for altitude ``h ≥ 0``, the
#: deviation is maximal at the surface (``k = 1 − e²``), where it reaches
#: ``arcsin(e² / (2 − e²)) ≈ 0.1924°``; higher altitudes pull ``k`` towards
#: 1 and shrink it.  The constant includes ~30 % slack on top.
GEOCENTRIC_LATITUDE_MARGIN_DEG = 0.25


def _rotation_z(theta: float) -> np.ndarray:
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    return np.array(
        [
            [cos_t, sin_t, 0.0],
            [-sin_t, cos_t, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )


def eci_to_ecef(position_eci: np.ndarray, gmst: float) -> np.ndarray:
    """Rotate ECI positions (km) into the Earth-fixed frame at the given GMST."""
    position_eci = np.asarray(position_eci, dtype=float)
    return position_eci @ _rotation_z(gmst).T


def ecef_to_eci(position_ecef: np.ndarray, gmst: float) -> np.ndarray:
    """Rotate Earth-fixed positions (km) into the inertial frame at the given GMST."""
    position_ecef = np.asarray(position_ecef, dtype=float)
    return position_ecef @ _rotation_z(-gmst).T


def geodetic_to_ecef(
    latitude_deg: float, longitude_deg: float, altitude_km: float = 0.0
) -> np.ndarray:
    """WGS-84 geodetic coordinates to an ECEF position vector (km)."""
    lat = np.radians(np.asarray(latitude_deg, dtype=float))
    lon = np.radians(np.asarray(longitude_deg, dtype=float))
    alt = np.asarray(altitude_km, dtype=float)
    n = _WGS84_A / np.sqrt(1.0 - _WGS84_E2 * np.sin(lat) ** 2)
    x = (n + alt) * np.cos(lat) * np.cos(lon)
    y = (n + alt) * np.cos(lat) * np.sin(lon)
    z = (n * (1.0 - _WGS84_E2) + alt) * np.sin(lat)
    return np.stack([x, y, z], axis=-1)


def ecef_to_geodetic(position_ecef: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ECEF position (km) to WGS-84 geodetic (lat deg, lon deg, alt km).

    Uses Bowring's iterative method (a handful of iterations is sufficient
    for millimetre-level accuracy at LEO altitudes).
    """
    position_ecef = np.asarray(position_ecef, dtype=float)
    x, y, z = position_ecef[..., 0], position_ecef[..., 1], position_ecef[..., 2]
    lon = np.arctan2(y, x)
    p = np.sqrt(x * x + y * y)
    lat = np.arctan2(z, p * (1.0 - _WGS84_E2))
    for _ in range(5):
        n = _WGS84_A / np.sqrt(1.0 - _WGS84_E2 * np.sin(lat) ** 2)
        alt = p / np.cos(lat) - n
        lat = np.arctan2(z, p * (1.0 - _WGS84_E2 * n / (n + alt)))
    n = _WGS84_A / np.sqrt(1.0 - _WGS84_E2 * np.sin(lat) ** 2)
    alt = p / np.cos(lat) - n
    return np.degrees(lat), np.degrees(lon), alt


def ecef_to_geocentric_latlon(position_ecef: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """ECEF position (km) to geocentric latitude and longitude (degrees).

    The cheap companion of :func:`ecef_to_geodetic`: no ellipsoid
    iteration, just two ``arctan2``.  The longitude is *bitwise identical*
    to the geodetic longitude (same formula); the geocentric latitude
    deviates from the geodetic one by at most
    :data:`GEOCENTRIC_LATITUDE_MARGIN_DEG` for points at or above the
    surface, which lets callers (the bounding-box test) classify points
    provably far from a latitude threshold without the full conversion.
    """
    position_ecef = np.asarray(position_ecef, dtype=float)
    x, y, z = position_ecef[..., 0], position_ecef[..., 1], position_ecef[..., 2]
    lon = np.arctan2(y, x)
    lat = np.arctan2(z, np.sqrt(x * x + y * y))
    return np.degrees(lat), np.degrees(lon)


def subsatellite_point(position_eci: np.ndarray, gmst: float) -> tuple[np.ndarray, np.ndarray]:
    """Geodetic latitude/longitude (degrees) directly below a satellite."""
    ecef = eci_to_ecef(position_eci, gmst)
    lat, lon, _ = ecef_to_geodetic(ecef)
    return lat, lon


def great_circle_distance_km(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Great-circle distance between two points on the mean-radius sphere."""
    lat1, lon1, lat2, lon2 = map(math.radians, (lat1_deg, lon1_deg, lat2_deg, lon2_deg))
    d_lat = lat2 - lat1
    d_lon = lon2 - lon1
    a = (
        math.sin(d_lat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2.0) ** 2
    )
    return 2.0 * constants.EARTH_RADIUS_MEAN_KM * math.asin(min(1.0, math.sqrt(a)))
