"""Astronomical time utilities: Julian dates, GMST and the simulation epoch."""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.orbits import constants


def julian_date(moment: datetime) -> float:
    """Julian date (UT1≈UTC) for a timezone-aware or naive-UTC datetime."""
    if moment.tzinfo is not None:
        moment = moment.astimezone(timezone.utc).replace(tzinfo=None)
    year, month = moment.year, moment.month
    day = (
        moment.day
        + moment.hour / 24.0
        + moment.minute / 1440.0
        + (moment.second + moment.microsecond * 1e-6) / constants.SECONDS_PER_DAY
    )
    if month <= 2:
        year -= 1
        month += 12
    a = math.floor(year / 100)
    b = 2 - a + math.floor(a / 4)
    return (
        math.floor(365.25 * (year + 4716))
        + math.floor(30.6001 * (month + 1))
        + day
        + b
        - 1524.5
    )


def gmst_rad(jd: float) -> float:
    """Greenwich mean sidereal time in radians for a Julian date."""
    t = (jd - 2451545.0) / 36525.0
    gmst_deg = (
        280.46061837
        + 360.98564736629 * (jd - 2451545.0)
        + 0.000387933 * t * t
        - t * t * t / 38710000.0
    )
    return math.radians(gmst_deg % 360.0)


@dataclass(frozen=True)
class Epoch:
    """The absolute start instant of an emulation run.

    All simulation times are seconds relative to this epoch.  Pinning the
    epoch in the configuration is what makes Celestial runs repeatable
    (paper §4.2, "Reproducibility").
    """

    start: datetime = datetime(2022, 1, 1, 0, 0, 0)

    def __post_init__(self):
        start = self.start
        if start.tzinfo is not None:
            start = start.astimezone(timezone.utc).replace(tzinfo=None)
            object.__setattr__(self, "start", start)

    @property
    def julian_date(self) -> float:
        """Julian date of the epoch."""
        return julian_date(self.start)

    def at(self, sim_time_s: float) -> datetime:
        """Absolute datetime corresponding to a simulation time offset."""
        return self.start + timedelta(seconds=sim_time_s)

    def julian_date_at(self, sim_time_s: float) -> float:
        """Julian date corresponding to a simulation time offset."""
        return self.julian_date + sim_time_s / constants.SECONDS_PER_DAY

    def gmst_at(self, sim_time_s: float) -> float:
        """GMST in radians at a simulation time offset."""
        return gmst_rad(self.julian_date_at(sim_time_s))
