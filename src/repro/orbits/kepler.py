"""Keplerian elements and two-body (plus secular J2) orbit propagation.

This is the fast, vectorisable propagator used for constellation-scale
updates.  The scalar :class:`SGP4Propagator` (see :mod:`repro.orbits.sgp4`)
provides the SGP4-class model the paper mentions; for circular LEO
constellation shells the dominant perturbation is the secular J2 drift of the
ascending node, argument of perigee and mean anomaly, which this propagator
includes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.orbits import constants


def mean_motion_from_semi_major_axis(semi_major_axis_km: float) -> float:
    """Mean motion [rad/s] for a given semi-major axis [km]."""
    if semi_major_axis_km <= 0:
        raise ValueError("semi-major axis must be positive")
    return math.sqrt(constants.EARTH_MU_KM3_S2 / semi_major_axis_km**3)


def semi_major_axis_from_mean_motion(mean_motion_rad_s: float) -> float:
    """Semi-major axis [km] for a given mean motion [rad/s]."""
    if mean_motion_rad_s <= 0:
        raise ValueError("mean motion must be positive")
    return (constants.EARTH_MU_KM3_S2 / mean_motion_rad_s**2) ** (1.0 / 3.0)


def solve_kepler(mean_anomaly_rad, eccentricity, tolerance: float = 1e-12):
    """Solve Kepler's equation ``M = E - e sin E`` for the eccentric anomaly.

    Works on scalars or NumPy arrays via Newton-Raphson iteration.
    """
    mean_anomaly = np.asarray(mean_anomaly_rad, dtype=float)
    ecc = np.asarray(eccentricity, dtype=float)
    if np.any(ecc < 0) or np.any(ecc >= 1):
        raise ValueError("eccentricity must be in [0, 1) for elliptical orbits")
    # Wrap the mean anomaly into [-pi, pi] for robust Newton convergence and
    # restore the full-revolution offset afterwards (E and M share it).
    wrapped = (mean_anomaly + math.pi) % (2.0 * math.pi) - math.pi
    revolutions = mean_anomaly - wrapped
    eccentric = np.where(
        ecc < 0.8, wrapped, np.copysign(math.pi, np.where(wrapped == 0.0, 1.0, wrapped))
    )
    for _ in range(60):
        delta = (eccentric - ecc * np.sin(eccentric) - wrapped) / (
            1.0 - ecc * np.cos(eccentric)
        )
        eccentric = eccentric - delta
        if np.all(np.abs(delta) < tolerance):
            break
    eccentric = eccentric + revolutions
    if np.isscalar(mean_anomaly_rad) and np.isscalar(eccentricity):
        return float(eccentric)
    return eccentric


def j2_secular_rates(
    semi_major_axis_km: float, eccentricity: float, inclination_rad: float
) -> tuple[float, float, float]:
    """Secular J2 rates (raan_dot, argp_dot, m_dot correction) in rad/s."""
    n = mean_motion_from_semi_major_axis(semi_major_axis_km)
    p = semi_major_axis_km * (1.0 - eccentricity**2)
    factor = 1.5 * constants.EARTH_J2 * (constants.EARTH_RADIUS_KM / p) ** 2 * n
    cos_i = math.cos(inclination_rad)
    raan_dot = -factor * cos_i
    argp_dot = factor * (2.0 - 2.5 * math.sin(inclination_rad) ** 2)
    m_dot = factor * math.sqrt(1.0 - eccentricity**2) * (1.0 - 1.5 * math.sin(inclination_rad) ** 2)
    return raan_dot, argp_dot, m_dot


@dataclass(frozen=True)
class KeplerianElements:
    """Classical orbital elements at the reference epoch (angles in degrees)."""

    semi_major_axis_km: float
    eccentricity: float
    inclination_deg: float
    raan_deg: float
    arg_perigee_deg: float
    mean_anomaly_deg: float

    def __post_init__(self):
        if self.semi_major_axis_km <= constants.EARTH_RADIUS_KM:
            raise ValueError(
                "semi-major axis must exceed the Earth radius "
                f"({self.semi_major_axis_km} km given)"
            )
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValueError("eccentricity must be in [0, 1)")

    @classmethod
    def circular(
        cls,
        altitude_km: float,
        inclination_deg: float,
        raan_deg: float = 0.0,
        mean_anomaly_deg: float = 0.0,
    ) -> "KeplerianElements":
        """Circular orbit at a given altitude above the equatorial radius."""
        return cls(
            semi_major_axis_km=constants.EARTH_RADIUS_KM + altitude_km,
            eccentricity=0.0,
            inclination_deg=inclination_deg,
            raan_deg=raan_deg,
            arg_perigee_deg=0.0,
            mean_anomaly_deg=mean_anomaly_deg,
        )

    @property
    def mean_motion_rad_s(self) -> float:
        """Two-body mean motion [rad/s]."""
        return mean_motion_from_semi_major_axis(self.semi_major_axis_km)

    @property
    def period_s(self) -> float:
        """Orbital period [s]."""
        return 2.0 * math.pi / self.mean_motion_rad_s

    @property
    def altitude_km(self) -> float:
        """Altitude of a circular orbit above the equatorial radius [km]."""
        return self.semi_major_axis_km - constants.EARTH_RADIUS_KM

    def with_mean_anomaly(self, mean_anomaly_deg: float) -> "KeplerianElements":
        """Copy of the elements with a different mean anomaly."""
        return replace(self, mean_anomaly_deg=mean_anomaly_deg)


def perifocal_to_eci_matrix(
    inclination_rad: float, raan_rad: float, arg_perigee_rad: float
) -> np.ndarray:
    """Rotation matrix from the perifocal frame to ECI."""
    cos_o, sin_o = math.cos(raan_rad), math.sin(raan_rad)
    cos_i, sin_i = math.cos(inclination_rad), math.sin(inclination_rad)
    cos_w, sin_w = math.cos(arg_perigee_rad), math.sin(arg_perigee_rad)
    return np.array(
        [
            [
                cos_o * cos_w - sin_o * sin_w * cos_i,
                -cos_o * sin_w - sin_o * cos_w * cos_i,
                sin_o * sin_i,
            ],
            [
                sin_o * cos_w + cos_o * sin_w * cos_i,
                -sin_o * sin_w + cos_o * cos_w * cos_i,
                -cos_o * sin_i,
            ],
            [sin_w * sin_i, cos_w * sin_i, cos_i],
        ]
    )


class KeplerPropagator:
    """Propagates Keplerian elements, optionally with secular J2 drift."""

    def __init__(self, elements: KeplerianElements, include_j2: bool = True):
        self.elements = elements
        self.include_j2 = include_j2
        incl = math.radians(elements.inclination_deg)
        if include_j2:
            self._raan_dot, self._argp_dot, self._m_dot_extra = j2_secular_rates(
                elements.semi_major_axis_km, elements.eccentricity, incl
            )
        else:
            self._raan_dot = self._argp_dot = self._m_dot_extra = 0.0

    def elements_at(self, t_seconds: float) -> KeplerianElements:
        """Osculating (secularly-updated) elements at an offset from epoch."""
        el = self.elements
        n = el.mean_motion_rad_s + self._m_dot_extra
        mean_anomaly = math.radians(el.mean_anomaly_deg) + n * t_seconds
        raan = math.radians(el.raan_deg) + self._raan_dot * t_seconds
        argp = math.radians(el.arg_perigee_deg) + self._argp_dot * t_seconds
        return KeplerianElements(
            semi_major_axis_km=el.semi_major_axis_km,
            eccentricity=el.eccentricity,
            inclination_deg=el.inclination_deg,
            raan_deg=math.degrees(raan) % 360.0,
            arg_perigee_deg=math.degrees(argp) % 360.0,
            mean_anomaly_deg=math.degrees(mean_anomaly) % 360.0,
        )

    def position_velocity_eci(self, t_seconds: float) -> tuple[np.ndarray, np.ndarray]:
        """ECI position [km] and velocity [km/s] at an offset from epoch."""
        el = self.elements_at(t_seconds)
        a, ecc = el.semi_major_axis_km, el.eccentricity
        mean_anomaly = math.radians(el.mean_anomaly_deg)
        eccentric = solve_kepler(mean_anomaly, ecc)
        cos_e, sin_e = math.cos(eccentric), math.sin(eccentric)
        radius = a * (1.0 - ecc * cos_e)
        true_anomaly = math.atan2(
            math.sqrt(1.0 - ecc * ecc) * sin_e, cos_e - ecc
        )
        position_pf = radius * np.array(
            [math.cos(true_anomaly), math.sin(true_anomaly), 0.0]
        )
        p = a * (1.0 - ecc * ecc)
        coeff = math.sqrt(constants.EARTH_MU_KM3_S2 / p)
        velocity_pf = coeff * np.array(
            [-math.sin(true_anomaly), ecc + math.cos(true_anomaly), 0.0]
        )
        rotation = perifocal_to_eci_matrix(
            math.radians(el.inclination_deg),
            math.radians(el.raan_deg),
            math.radians(el.arg_perigee_deg),
        )
        return rotation @ position_pf, rotation @ velocity_pf

    def position_eci(self, t_seconds: float) -> np.ndarray:
        """ECI position [km] at an offset from epoch."""
        position, _ = self.position_velocity_eci(t_seconds)
        return position
