"""Command-line interface for the Celestial reproduction.

Mirrors how the original testbed is driven from a single configuration file
(§3.1), extended to whole experiments: every workload subcommand builds a
declarative :class:`~repro.experiments.spec.ExperimentSpec` and hands it to
the one :class:`~repro.experiments.runner.ExperimentRunner`, and ``run``
executes such a spec straight from a TOML/JSON file — so a parameter sweep
is a directory of spec files, not a Python module.

Usage (installed as ``repro-celestial``)::

    repro-celestial validate config.toml
    repro-celestial snapshot config.toml --time 120 --output snapshot.json --geojson
    repro-celestial scenarios
    repro-celestial run experiment.toml --output-dir results
    repro-celestial run experiment.toml --parallelism processes --workers 2 --transport tcp
    repro-celestial meetup --mode satellite --duration 60
    repro-celestial dart --deployment central --buoys 20 --sinks 40 --duration 60
    repro-celestial handover config.toml --station hawaii --duration 600
    repro-celestial cost --minutes 15
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import cost_comparison, render_table
from repro.core import (
    Configuration,
    ConstellationCalculation,
    constellation_snapshot,
    estimate_resources,
    snapshot_to_geojson,
    validate_configuration,
)
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    RuntimeSpec,
    ScenarioSpec,
    WorkloadSpec,
    entries,
)


def _cmd_validate(args: argparse.Namespace) -> int:
    config = Configuration.from_path(args.config)
    estimate = estimate_resources(config)
    warnings = validate_configuration(config)
    rows = [
        ["satellites", config.total_satellites],
        ["ground stations", len(config.ground_stations)],
        ["peak satellites in bounding box", estimate.satellites_in_box],
        ["estimated required CPU cores", estimate.required_cores],
        ["available CPU cores", estimate.available_cores],
        ["estimated required memory [MiB]", estimate.required_memory_mib],
        ["available memory [MiB]", estimate.available_memory_mib],
    ]
    print(render_table(["quantity", "value"], rows, title=f"Validation of {args.config}"))
    if warnings:
        print("\nwarnings:")
        for warning in warnings:
            print(f"  - {warning}")
    else:
        print("\nno warnings")
    return 0 if estimate.memory_sufficient else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    config = Configuration.from_path(args.config)
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(args.time)
    if args.geojson:
        payload = snapshot_to_geojson(state)
    else:
        payload = constellation_snapshot(state, include_links=not args.no_links)
    text = json.dumps(payload, indent=2 if args.pretty else None)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text)} bytes, t={args.time:.0f}s)")
    else:
        print(text)
    return 0


def _print_result(result) -> int:
    print(render_table(["metric", "value"], result.metrics, title=result.title))
    for path in result.output_paths:
        print(f"wrote {path}")
    return 0


def _runtime_spec(args: argparse.Namespace) -> RuntimeSpec:
    return RuntimeSpec(
        parallelism=args.parallelism, workers=args.workers, transport=args.transport
    )


def _cmd_meetup(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        name="meetup-cli",
        scenario=ScenarioSpec(
            name="west-africa-meetup",
            params={
                "duration_s": args.duration,
                "shells": args.shells,
                "seed": args.seed,
            },
        ),
        workload=WorkloadSpec(
            app="meetup",
            params={"mode": args.mode, "packet_interval_s": args.packet_interval},
        ),
        runtime=_runtime_spec(args),
    )
    return _print_result(ExperimentRunner(spec).run())


def _cmd_dart(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        name="dart-cli",
        scenario=ScenarioSpec(
            name="pacific-dart",
            params={
                "deployment": args.deployment,
                "buoy_count": args.buoys,
                "sink_count": args.sinks,
                "duration_s": args.duration,
                "seed": args.seed,
            },
        ),
        workload=WorkloadSpec(
            app="dart",
            params={
                "deployment": args.deployment,
                "group_count": max(2, args.buoys // 5),
            },
        ),
        runtime=_runtime_spec(args),
    )
    return _print_result(ExperimentRunner(spec).run())


def _cmd_handover(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        name="handover-cli",
        scenario=ScenarioSpec(path=args.config),
        workload=WorkloadSpec(
            app="handover",
            params={
                "station": args.station,
                "duration_s": args.duration,
                "interval_s": args.interval,
            },
        ),
    )
    return _print_result(ExperimentRunner(spec).run())


def _cmd_cost(args: argparse.Namespace) -> int:
    comparison = cost_comparison(minutes=args.minutes)
    rows = [[key, value] for key, value in comparison.items()]
    print(render_table(["quantity", "value"], rows, title="Cost comparison (§4.2)"))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    rows = [[item.name, item.description] for item in entries()]
    print(render_table(["scenario", "description"], rows, title="Registered scenarios"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_path(args.spec)
    overrides = {
        key: value
        for key, value in (
            ("parallelism", args.parallelism),
            ("workers", args.workers),
            ("transport", args.transport),
            ("duration_s", args.duration),
            ("seed", args.seed),
        )
        if value is not None
    }
    if overrides:
        spec = spec.with_runtime(**overrides)
    if args.serve is not None:
        spec = spec.with_serve(args.serve)
    output_dir = None
    if not args.no_output:
        output_dir = args.output_dir if args.output_dir else f"{spec.name}-results"
    return _print_result(ExperimentRunner(spec, output_dir=output_dir).run())


def _add_parallelism_arguments(
    parser: argparse.ArgumentParser, defaults: bool = True
) -> None:
    """Fan-out backend selection shared by the experiment subcommands.

    With ``defaults=False`` every option defaults to None so ``run`` can
    distinguish "not given" from "given" and leave the spec's own runtime
    section in charge.
    """
    parser.add_argument(
        "--parallelism",
        choices=["threads", "processes"],
        default="threads" if defaults else None,
        help="host fan-out backend: in-process thread pool (default) or "
        "supervised worker processes (escapes the GIL for per-host sweeps)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --parallelism processes "
        "(default: one per emulated host)",
    )
    parser.add_argument(
        "--transport",
        choices=["pipe", "tcp"],
        default="pipe" if defaults else None,
        help="worker transport for --parallelism processes: local duplex "
        "pipes (default) or per-worker TCP connections (the remote-worker "
        "wire path, exercised here over localhost)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-celestial`` command."""
    parser = argparse.ArgumentParser(prog="repro-celestial", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser("validate", help="validate a configuration file")
    validate.add_argument("config")
    validate.set_defaults(handler=_cmd_validate)

    snapshot = subparsers.add_parser("snapshot", help="export a constellation snapshot")
    snapshot.add_argument("config")
    snapshot.add_argument("--time", type=float, default=0.0)
    snapshot.add_argument("--output", default=None)
    snapshot.add_argument("--geojson", action="store_true")
    snapshot.add_argument("--no-links", action="store_true")
    snapshot.add_argument("--pretty", action="store_true")
    snapshot.set_defaults(handler=_cmd_snapshot)

    scenarios = subparsers.add_parser("scenarios", help="list the registered scenarios")
    scenarios.set_defaults(handler=_cmd_scenarios)

    run = subparsers.add_parser("run", help="run a declarative experiment spec")
    run.add_argument("spec", help="experiment spec file (.toml or .json)")
    run.add_argument(
        "--output-dir",
        default=None,
        help="result-bundle directory (default: <experiment name>-results)",
    )
    run.add_argument(
        "--no-output",
        action="store_true",
        help="print the summary table only, write no result bundle",
    )
    run.add_argument("--duration", type=float, default=None,
                     help="override the spec's duration [s]")
    run.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    run.add_argument(
        "--serve",
        nargs="?",
        const="",
        default=None,
        metavar="HOST:PORT",
        help="attach the streaming gateway for the run (default bind: "
        "127.0.0.1 on an ephemeral port); overrides the spec's [serve] table",
    )
    _add_parallelism_arguments(run, defaults=False)
    run.set_defaults(handler=_cmd_run)

    meetup = subparsers.add_parser("meetup", help="run the §4 meetup experiment")
    meetup.add_argument("--mode", choices=["satellite", "cloud"], default="satellite")
    meetup.add_argument("--duration", type=float, default=60.0)
    meetup.add_argument("--shells", choices=["all", "two-lowest", "lowest"], default="two-lowest")
    meetup.add_argument("--packet-interval", type=float, default=0.1)
    meetup.add_argument("--seed", type=int, default=0)
    _add_parallelism_arguments(meetup)
    meetup.set_defaults(handler=_cmd_meetup)

    dart = subparsers.add_parser("dart", help="run the §5 ocean alert experiment")
    dart.add_argument("--deployment", choices=["central", "satellite"], default="central")
    dart.add_argument("--buoys", type=int, default=20)
    dart.add_argument("--sinks", type=int, default=40)
    dart.add_argument("--duration", type=float, default=60.0)
    dart.add_argument("--seed", type=int, default=0)
    _add_parallelism_arguments(dart)
    dart.set_defaults(handler=_cmd_dart)

    handover = subparsers.add_parser("handover", help="analyse ground-station uplink handovers")
    handover.add_argument("config")
    handover.add_argument("--station", required=True)
    handover.add_argument("--duration", type=float, default=600.0)
    handover.add_argument("--interval", type=float, default=10.0)
    handover.set_defaults(handler=_cmd_handover)

    cost = subparsers.add_parser("cost", help="print the §4.2 cost comparison")
    cost.add_argument("--minutes", type=float, default=15.0)
    cost.set_defaults(handler=_cmd_cost)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
