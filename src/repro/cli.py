"""Command-line interface for the Celestial reproduction.

Mirrors how the original testbed is driven from a single configuration file
(§3.1): the CLI validates configurations, exports constellation snapshots,
runs the paper's two evaluation workloads and prints the cost comparison.

Usage (installed as ``repro-celestial``)::

    repro-celestial validate config.toml
    repro-celestial snapshot config.toml --time 120 --output snapshot.json --geojson
    repro-celestial meetup --mode satellite --duration 60
    repro-celestial dart --deployment central --buoys 20 --sinks 40 --duration 60
    repro-celestial dart --deployment central --parallelism processes --workers 4
    repro-celestial dart --parallelism processes --workers 2 --transport tcp
    repro-celestial handover config.toml --station hawaii --duration 600
    repro-celestial cost --minutes 15
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import Celestial
from repro.analysis import cost_comparison, render_table
from repro.analysis.handover import analyze_handovers
from repro.apps import DartExperiment, MeetupExperiment, VideoStreamParams
from repro.core import (
    Configuration,
    ConstellationCalculation,
    constellation_snapshot,
    estimate_resources,
    snapshot_to_geojson,
    validate_configuration,
)
from repro.scenarios import dart_configuration, west_africa_configuration


def _load_configuration(path: str) -> Configuration:
    if path.endswith(".toml"):
        return Configuration.from_toml(path)
    with open(path) as handle:
        return Configuration.from_dict(json.load(handle))


def _cmd_validate(args: argparse.Namespace) -> int:
    config = _load_configuration(args.config)
    estimate = estimate_resources(config)
    warnings = validate_configuration(config)
    rows = [
        ["satellites", config.total_satellites],
        ["ground stations", len(config.ground_stations)],
        ["peak satellites in bounding box", estimate.satellites_in_box],
        ["estimated required CPU cores", estimate.required_cores],
        ["available CPU cores", estimate.available_cores],
        ["estimated required memory [MiB]", estimate.required_memory_mib],
        ["available memory [MiB]", estimate.available_memory_mib],
    ]
    print(render_table(["quantity", "value"], rows, title=f"Validation of {args.config}"))
    if warnings:
        print("\nwarnings:")
        for warning in warnings:
            print(f"  - {warning}")
    else:
        print("\nno warnings")
    return 0 if estimate.memory_sufficient else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    config = _load_configuration(args.config)
    calculation = ConstellationCalculation(config)
    state = calculation.state_at(args.time)
    if args.geojson:
        payload = snapshot_to_geojson(state)
    else:
        payload = constellation_snapshot(state, include_links=not args.no_links)
    text = json.dumps(payload, indent=2 if args.pretty else None)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text)} bytes, t={args.time:.0f}s)")
    else:
        print(text)
    return 0


def _cmd_meetup(args: argparse.Namespace) -> int:
    config = west_africa_configuration(duration_s=args.duration, shells=args.shells,
                                       seed=args.seed)
    testbed = Celestial(config, parallelism=args.parallelism, worker_count=args.workers,
                        transport=args.transport)
    experiment = MeetupExperiment(
        testbed,
        mode=args.mode,
        stream=VideoStreamParams(packet_interval_s=args.packet_interval),
    )
    try:
        results = experiment.run()
    finally:
        testbed.close()
    merged = results.all_measurements()
    rows = [
        ["samples", len(merged)],
        ["median latency [ms]", merged.median()],
        ["p80 latency [ms]", merged.percentile(80)],
        ["fraction <= 16 ms", merged.fraction_below(16.0)],
        ["fraction <= 46 ms", merged.fraction_below(46.0)],
        ["bridge handovers", max(0, len(results.bridge_history) - 1)],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"Meetup experiment ({args.mode} bridge, {args.duration:.0f}s)"))
    return 0


def _cmd_dart(args: argparse.Namespace) -> int:
    config = dart_configuration(
        deployment=args.deployment,
        buoy_count=args.buoys,
        sink_count=args.sinks,
        duration_s=args.duration,
        seed=args.seed,
    )
    testbed = Celestial(config, parallelism=args.parallelism, worker_count=args.workers,
                        transport=args.transport)
    experiment = DartExperiment(testbed, deployment=args.deployment,
                                group_count=max(2, args.buoys // 5))
    try:
        results = experiment.run()
    finally:
        testbed.close()
    low, high = results.latency_range_ms()
    regions = results.mean_latency_by_region()
    rows = [
        ["readings sent", results.readings_sent],
        ["results delivered", results.results_delivered],
        ["mean latency [ms]", results.all_latencies().mean()],
        ["min/max sink mean [ms]", f"{low:.1f} / {high:.1f}"],
        ["West Pacific mean [ms]", regions["west_pacific"]],
        ["Americas mean [ms]", regions["americas"]],
        ["processing mean [ms]", results.processing_ms.mean()],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"DART experiment ({args.deployment} deployment, {args.duration:.0f}s)"))
    return 0


def _cmd_handover(args: argparse.Namespace) -> int:
    config = _load_configuration(args.config)
    calculation = ConstellationCalculation(config)
    analysis = analyze_handovers(calculation, args.station, args.duration, args.interval)
    rows = [
        ["handovers", analysis.handover_count],
        ["handovers per minute", analysis.handover_rate_per_minute],
        ["mean uplink duration [s]", analysis.mean_uplink_duration_s()],
        ["coverage fraction", analysis.coverage_fraction],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"Uplink handovers of {args.station} over {args.duration:.0f}s"))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    comparison = cost_comparison(minutes=args.minutes)
    rows = [[key, value] for key, value in comparison.items()]
    print(render_table(["quantity", "value"], rows, title="Cost comparison (§4.2)"))
    return 0


def _add_parallelism_arguments(parser: argparse.ArgumentParser) -> None:
    """Fan-out backend selection shared by the experiment subcommands."""
    parser.add_argument(
        "--parallelism",
        choices=["threads", "processes"],
        default="threads",
        help="host fan-out backend: in-process thread pool (default) or "
        "supervised worker processes (escapes the GIL for per-host sweeps)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --parallelism processes "
        "(default: one per emulated host)",
    )
    parser.add_argument(
        "--transport",
        choices=["pipe", "tcp"],
        default="pipe",
        help="worker transport for --parallelism processes: local duplex "
        "pipes (default) or per-worker TCP connections (the remote-worker "
        "wire path, exercised here over localhost)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-celestial`` command."""
    parser = argparse.ArgumentParser(prog="repro-celestial", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser("validate", help="validate a configuration file")
    validate.add_argument("config")
    validate.set_defaults(handler=_cmd_validate)

    snapshot = subparsers.add_parser("snapshot", help="export a constellation snapshot")
    snapshot.add_argument("config")
    snapshot.add_argument("--time", type=float, default=0.0)
    snapshot.add_argument("--output", default=None)
    snapshot.add_argument("--geojson", action="store_true")
    snapshot.add_argument("--no-links", action="store_true")
    snapshot.add_argument("--pretty", action="store_true")
    snapshot.set_defaults(handler=_cmd_snapshot)

    meetup = subparsers.add_parser("meetup", help="run the §4 meetup experiment")
    meetup.add_argument("--mode", choices=["satellite", "cloud"], default="satellite")
    meetup.add_argument("--duration", type=float, default=60.0)
    meetup.add_argument("--shells", choices=["all", "two-lowest", "lowest"], default="two-lowest")
    meetup.add_argument("--packet-interval", type=float, default=0.1)
    meetup.add_argument("--seed", type=int, default=0)
    _add_parallelism_arguments(meetup)
    meetup.set_defaults(handler=_cmd_meetup)

    dart = subparsers.add_parser("dart", help="run the §5 ocean alert experiment")
    dart.add_argument("--deployment", choices=["central", "satellite"], default="central")
    dart.add_argument("--buoys", type=int, default=20)
    dart.add_argument("--sinks", type=int, default=40)
    dart.add_argument("--duration", type=float, default=60.0)
    dart.add_argument("--seed", type=int, default=0)
    _add_parallelism_arguments(dart)
    dart.set_defaults(handler=_cmd_dart)

    handover = subparsers.add_parser("handover", help="analyse ground-station uplink handovers")
    handover.add_argument("config")
    handover.add_argument("--station", required=True)
    handover.add_argument("--duration", type=float, default=600.0)
    handover.add_argument("--interval", type=float, default=10.0)
    handover.set_defaults(handler=_cmd_handover)

    cost = subparsers.add_parser("cost", help="print the §4.2 cost comparison")
    cost.add_argument("--minutes", type=float, default=15.0)
    cost.set_defaults(handler=_cmd_cost)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
