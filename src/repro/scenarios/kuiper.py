"""The Project Kuiper constellation (FCC filing, first-generation system).

Three shells totalling 3,236 satellites: 34 planes of 34 satellites at
630 km (1,156), 36 planes of 36 at 610 km (1,296) and 28 planes of 28 at
590 km (784), at moderate inclinations between 33° and 51.9°.  The shell
split follows the FCC authorization also used by Hypatia; like the
Starlink shells these are Walker-delta patterns (ascending nodes spread
over the full 360°), so every plane links to its neighbour across the
seamless +GRID.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, ShellGeometry

#: Minimum elevation for Kuiper customer terminals per the FCC filing [deg].
KUIPER_MIN_ELEVATION_DEG = 35.0
#: ISL / gateway link bandwidth assumed for Kuiper: 10 Gb/s (same class as Starlink).
KUIPER_BANDWIDTH_KBPS = 10_000_000.0

_KUIPER_SHELLS = (
    # (planes, satellites per plane, altitude km, inclination deg)
    (34, 34, 630.0, 51.9),  # 1,156 satellites
    (36, 36, 610.0, 42.0),  # 1,296 satellites
    (28, 28, 590.0, 33.0),  # 784 satellites
)


def kuiper_network_params() -> NetworkParams:
    """Network parameters shared by the three Kuiper shells."""
    return NetworkParams(
        isl_bandwidth_kbps=KUIPER_BANDWIDTH_KBPS,
        uplink_bandwidth_kbps=KUIPER_BANDWIDTH_KBPS,
        min_elevation_deg=KUIPER_MIN_ELEVATION_DEG,
    )


def kuiper_shells(
    satellite_compute: ComputeParams | None = None,
    limit: int | None = None,
) -> list[ShellConfig]:
    """Shell configurations of the first-generation Kuiper system.

    ``limit`` restricts the number of shells (e.g. ``limit=1`` keeps only
    the 630 km shell).
    """
    compute = satellite_compute or ComputeParams(vcpu_count=2, memory_mib=512)
    shells = []
    for index, (planes, per_plane, altitude, inclination) in enumerate(_KUIPER_SHELLS):
        shells.append(
            ShellConfig(
                name=f"kuiper-{index}",
                geometry=ShellGeometry(
                    planes=planes,
                    satellites_per_plane=per_plane,
                    altitude_km=altitude,
                    inclination_deg=inclination,
                    arc_of_ascending_nodes_deg=360.0,
                ),
                network=kuiper_network_params(),
                compute=compute,
            )
        )
    if limit is not None:
        shells = shells[:limit]
    return shells


def kuiper_first_shell(satellite_compute: ComputeParams | None = None) -> ShellConfig:
    """Only the 630 km, 34×34 shell (1,156 satellites)."""
    return kuiper_shells(satellite_compute, limit=1)[0]


def kuiper_total_satellites() -> int:
    """Total satellites across the three Kuiper shells (3,236)."""
    return sum(planes * per_plane for planes, per_plane, _, _ in _KUIPER_SHELLS)


@scenario("kuiper")
def kuiper_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    shell_limit: Optional[int] = None,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """The first-generation Project Kuiper system (up to 3,236 satellites).

    A bare-constellation configuration (no ground segment); ``shell_limit``
    keeps only the first shells, as in :func:`kuiper_shells`.
    """
    return Configuration(
        shells=tuple(kuiper_shells(limit=shell_limit)),
        ground_stations=(),
        bounding_box=None,
        hosts=HostConfig(count=11, cpu_cores=32, memory_mib=64 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
