"""The §4 West-Africa meetup scenario (paper Fig. 3).

Three clients in Accra (Ghana), Abuja (Nigeria) and Yaoundé (Cameroon) need a
common meetup server for a WebRTC video conference.  The nearest cloud data
centre is in Johannesburg (South Africa); alternatively a satellite server of
the phase I Starlink constellation can host the video bridge.  A bounding box
over West/North Africa limits which satellites are emulated.
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.core.bounding_box import BoundingBox
from repro.core.config import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    HostConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, GroundStation
from repro.scenarios.starlink import STARLINK_BANDWIDTH_KBPS, starlink_phase1_shells

#: Geodetic client locations of the §4 experiment.
CLIENT_LOCATIONS = {
    "accra": GroundStation("accra", 5.6037, -0.1870),
    "abuja": GroundStation("abuja", 9.0765, 7.3986),
    "yaounde": GroundStation("yaounde", 3.8480, 11.5021),
}

#: The nearest cloud data centre: Johannesburg, South Africa.
CLOUD_LOCATION = GroundStation("johannesburg", -26.2041, 28.0473)

#: Resources of clients and the tracking service: 4 cores, 4 GB (§4.1).
CLIENT_COMPUTE = ComputeParams(vcpu_count=4, memory_mib=4096)
#: Resources of satellite servers and the cloud video bridge: 2 cores, 512 MB.
SERVER_COMPUTE = ComputeParams(vcpu_count=2, memory_mib=512)


def west_africa_bounding_box() -> BoundingBox:
    """Bounding box over West Africa used to limit emulated satellites.

    The box covers the three client locations (Fig. 3) with a margin wide
    enough that every satellite a client can see at the minimum elevation is
    emulated, while keeping the validator's core estimate in the same range
    as the paper's 137 cores.
    """
    return BoundingBox(lat_min=-2.0, lat_max=16.0, lon_min=-8.0, lon_max=18.0)


@scenario("west-africa-meetup")
def west_africa_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    shells: Literal["all", "lowest", "two-lowest"] = "two-lowest",
    use_bounding_box: bool = True,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """Configuration of the §4 meetup experiment.

    ``shells`` controls how much of the phase I constellation is modelled;
    the paper observes that only the two lowest/densest shells are ever
    selected as bridge servers, so ``"two-lowest"`` is the default trade-off
    between fidelity and runtime.  The full five-shell constellation is
    available with ``shells="all"``.
    """
    limit = {"all": None, "lowest": 1, "two-lowest": 2}[shells]
    shell_configs = tuple(starlink_phase1_shells(SERVER_COMPUTE, limit=limit))
    ground_stations = tuple(
        [
            GroundStationConfig(
                station=station,
                compute=CLIENT_COMPUTE,
                uplink_bandwidth_kbps=STARLINK_BANDWIDTH_KBPS,
            )
            for station in CLIENT_LOCATIONS.values()
        ]
        + [
            # The cloud data centre hosts the video bridge (2 cores / 512 MB)
            # and the tracking service (4 cores / 4 GB) as separate machines.
            GroundStationConfig(
                station=GroundStation(
                    "johannesburg-cloud",
                    CLOUD_LOCATION.latitude_deg,
                    CLOUD_LOCATION.longitude_deg,
                ),
                compute=SERVER_COMPUTE,
                uplink_bandwidth_kbps=STARLINK_BANDWIDTH_KBPS,
            ),
            GroundStationConfig(
                station=GroundStation(
                    "johannesburg-tracking",
                    CLOUD_LOCATION.latitude_deg,
                    CLOUD_LOCATION.longitude_deg,
                ),
                compute=CLIENT_COMPUTE,
                uplink_bandwidth_kbps=STARLINK_BANDWIDTH_KBPS,
            ),
        ]
    )
    return Configuration(
        shells=shell_configs,
        ground_stations=ground_stations,
        bounding_box=west_africa_bounding_box() if use_bounding_box else None,
        hosts=HostConfig(count=3, cpu_cores=32, memory_mib=32 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
