"""The Iridium constellation used by the DART case study (paper §5, Fig. 10).

A single shell of 66 satellites in 6 planes at 780 km altitude in a polar
orbit, spaced evenly only around half the globe (180° arc of ascending
nodes).  Because of this Walker-star spacing, no ISLs exist between the first
and last orbital plane — satellites there move in opposite directions.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, GroundStation, ShellGeometry

#: Iridium Certus 100 bandwidth recommended for remote sensing: 88 kb/s (§5.1).
IRIDIUM_SENSOR_BANDWIDTH_KBPS = 88.0
#: ISL and central ground-station link bandwidth in the case study: 100 Mb/s.
IRIDIUM_ISL_BANDWIDTH_KBPS = 100_000.0
#: Minimum elevation for Iridium terminals [deg].
IRIDIUM_MIN_ELEVATION_DEG = 8.2


def iridium_shell(
    satellite_compute: ComputeParams | None = None,
    inclination_deg: float = 90.0,
) -> ShellConfig:
    """Shell configuration of the Iridium constellation.

    The paper describes the orbit as polar (90° inclination); the operational
    constellation flies at 86.4°, which can be selected via
    ``inclination_deg`` without affecting the seam behaviour.
    """
    compute = satellite_compute or ComputeParams(vcpu_count=1, memory_mib=1024)
    return ShellConfig(
        name="iridium",
        geometry=ShellGeometry(
            planes=6,
            satellites_per_plane=11,
            altitude_km=780.0,
            inclination_deg=inclination_deg,
            arc_of_ascending_nodes_deg=180.0,
        ),
        network=NetworkParams(
            isl_bandwidth_kbps=IRIDIUM_ISL_BANDWIDTH_KBPS,
            uplink_bandwidth_kbps=IRIDIUM_SENSOR_BANDWIDTH_KBPS,
            min_elevation_deg=IRIDIUM_MIN_ELEVATION_DEG,
        ),
        compute=compute,
    )


@scenario("iridium")
def iridium_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 5.0,
    inclination_deg: float = 90.0,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """The Iridium constellation with one Hawaii ground station (66 satellites).

    The minimal runnable form of the §5 setting: the full buoy/sink ground
    segment of the DART case study is the ``pacific-dart`` scenario; this
    one is small enough for smoke tests and uplink-handover analyses.
    """
    hawaii = GroundStationConfig(
        station=GroundStation("hawaii", 21.36, -157.95),
        compute=ComputeParams(vcpu_count=4, memory_mib=4096),
    )
    return Configuration(
        shells=(iridium_shell(inclination_deg=inclination_deg),),
        ground_stations=(hawaii,),
        bounding_box=None,
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=96 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
