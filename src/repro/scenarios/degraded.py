"""A degraded-operator scenario: one operator's shell progressively loses ISLs.

Built on top of the mixed-operator configuration
(:mod:`repro.scenarios.mixed`): three operators share the sky, and one of
them — by default the OneWeb shell — suffers a progressive inter-satellite
laser failure cascade.  Every degradation step severs another batch of the
victim shell's intra-shell ISLs through the **fault-injection API**
(:meth:`~repro.core.fault_injection.FaultInjector.inject_packet_loss` with
probability 1.0 on both directions), so the outage is applied exactly the
way a testbed user would apply it at runtime: no configuration change, no
topology rebuild — the routing/uplink machinery keeps seeing the links, the
data plane stops delivering over them.

This models the operationally interesting regime between "operator healthy"
and "operator gone": traffic that used to ride the victim's ISL mesh has to
fall back to ground-hops or a competitor's shell, and the healthy operators'
topology is entirely unaffected (asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import Configuration
from repro.experiments.registry import scenario
from repro.scenarios.mixed import mixed_operator_configuration

#: Shell name degraded by default (the OneWeb Walker-star shell).
DEFAULT_VICTIM_SHELL = "oneweb"


def degraded_operator_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    kuiper_shell_limit: Optional[int] = 1,
    seed: int = 0,
) -> tuple[Configuration, int]:
    """The mixed-operator configuration plus the victim shell's index.

    Returns ``(configuration, victim_shell_index)``; the index feeds
    :class:`OperatorDegradation` (and is resolved by name, so reordering
    the mixed shells cannot silently change the victim).
    """
    config = mixed_operator_configuration(
        duration_s=duration_s,
        update_interval_s=update_interval_s,
        kuiper_shell_limit=kuiper_shell_limit,
        seed=seed,
    )
    return config, victim_shell_index(config)


@scenario("degraded-operator")
def degraded_mixed_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    kuiper_shell_limit: Optional[int] = 1,
    seed: int = 0,
) -> Configuration:
    """The mixed-operator sky whose OneWeb shell suffers the ISL cascade.

    The registered form of :func:`degraded_operator_configuration`: scenario
    factories return a plain :class:`Configuration`, so the victim index is
    not part of the return value — an experiment spec names the victim shell
    in its fault program (``target = "oneweb"``) and the runner resolves the
    index with :func:`victim_shell_index`.
    """
    config, _victim = degraded_operator_configuration(
        duration_s=duration_s,
        update_interval_s=update_interval_s,
        kuiper_shell_limit=kuiper_shell_limit,
        seed=seed,
    )
    return config


def victim_shell_index(
    config: Configuration, shell_name: str = DEFAULT_VICTIM_SHELL
) -> int:
    """Index of the victim operator's shell in a configuration."""
    for index, shell in enumerate(config.shells):
        if shell.name == shell_name:
            return index
    raise ValueError(f"configuration has no shell named {shell_name!r}")


@dataclass
class DegradationStep:
    """One executed degradation step (for analysis/plots)."""

    time_s: float
    severed_pairs: int
    total_severed: int
    remaining_intact: int


@dataclass
class OperatorDegradation:
    """Progressive ISL failure cascade against one operator's shell.

    Every ``interval_s`` of simulated time a batch of
    ``isls_per_step`` not-yet-severed intra-shell ISLs of shell
    ``shell_index`` is picked (uniformly, from the scenario's seeded RNG)
    and killed through the testbed's fault injector, until
    ``target_fraction`` of the ISLs observed at the first step is gone.
    The set of severed satellite pairs is tracked by endpoint pair — ISL
    edge ids change across epochs, pairs are stable.

    Usage::

        config, victim = degraded_operator_configuration()
        testbed = Celestial(config)
        degradation = OperatorDegradation(testbed, victim)
        testbed.start()
        testbed.sim.process(degradation.process())
        testbed.run()
    """

    testbed: "object"  # repro.core.testbed.Celestial (kept untyped: no cycle)
    shell_index: int
    isls_per_step: int = 24
    interval_s: float = 60.0
    target_fraction: float = 0.5
    rng: Optional[np.random.Generator] = None
    severed: set[tuple[int, int]] = field(default_factory=set)
    steps: list[DegradationStep] = field(default_factory=list)

    def __post_init__(self):
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError("target fraction must be in (0, 1]")
        if self.isls_per_step <= 0:
            raise ValueError("ISLs per step must be positive")
        if self.rng is None:
            self.rng = self.testbed.streams.stream(
                f"degraded-operator-{self.shell_index}"
            )

    # -- topology inspection ------------------------------------------------

    def _shell_isl_pairs(self) -> list[tuple[int, int]]:
        """Intact intra-shell ISL endpoint pairs of the victim shell."""
        state = self.testbed.state
        graph = state.graph
        span = state.node_index.satellites_of_shell(self.shell_index)
        node_a, node_b = graph.node_a, graph.node_b
        mask = (
            (graph.link_type_codes == 0)  # LinkType.ISL
            & (node_a >= span.start) & (node_a < span.stop)
            & (node_b >= span.start) & (node_b < span.stop)
        )
        pairs = zip(node_a[mask].tolist(), node_b[mask].tolist())
        return [pair for pair in pairs if pair not in self.severed]

    def _machine(self, node: int):
        shell_offset = self.testbed.state.node_index.shell_offset(self.shell_index)
        return self.testbed.satellite(self.shell_index, node - shell_offset)

    # -- degradation --------------------------------------------------------

    def sever(self, count: int, now_s: float) -> int:
        """Sever up to ``count`` random intact ISLs; returns how many."""
        intact = self._shell_isl_pairs()
        if not intact:
            return 0
        picked = self.rng.choice(len(intact), size=min(count, len(intact)),
                                 replace=False)
        injector = self.testbed.fault_injector
        for position in np.sort(picked).tolist():
            node_a, node_b = intact[position]
            machine_a, machine_b = self._machine(node_a), self._machine(node_b)
            injector.inject_packet_loss(machine_a, machine_b, 1.0, now_s)
            injector.inject_packet_loss(machine_b, machine_a, 1.0, now_s)
            self.severed.add((node_a, node_b))
        return len(picked)

    @property
    def done(self) -> bool:
        """Whether the target fraction has been reached."""
        if not self.steps:
            return False
        first = self.steps[0]
        total_at_start = first.total_severed + first.remaining_intact
        return len(self.severed) >= self.target_fraction * total_at_start

    def process(self):
        """Simulation process driving the cascade (register with ``sim.process``)."""
        while True:
            yield self.testbed.sim.timeout(self.interval_s)
            if self.done:
                return
            now = self.testbed.sim.now
            severed_now = self.sever(self.isls_per_step, now)
            self.steps.append(
                DegradationStep(
                    time_s=now,
                    severed_pairs=severed_now,
                    total_severed=len(self.severed),
                    remaining_intact=len(self._shell_isl_pairs()),
                )
            )
            if severed_now == 0:
                return
