"""The planned phase I Starlink constellation (paper Fig. 1).

Five shells: 1,584 satellites at 550 km, 1,600 at 1,110 km, 400 at 1,130 km,
375 at 1,275 km and 450 at 1,325 km altitude — 4,409 satellites in total
(§2.1, §4).  Plane/satellite splits follow the FCC filings used by the paper
and Hypatia: the 550 km shell has 72 planes of 22 satellites at 53°
inclination.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, ShellGeometry

#: Minimum elevation for Starlink user terminals / ground stations [deg].
STARLINK_MIN_ELEVATION_DEG = 25.0
#: ISL and ground-link bandwidth used in the §4 experiment: 10 Gb/s.
STARLINK_BANDWIDTH_KBPS = 10_000_000.0

_PHASE1_SHELLS = (
    # (planes, satellites per plane, altitude km, inclination deg)
    (72, 22, 550.0, 53.0),     # 1,584 satellites
    (32, 50, 1110.0, 53.8),    # 1,600 satellites
    (8, 50, 1130.0, 74.0),     # 400 satellites
    (5, 75, 1275.0, 81.0),     # 375 satellites
    (6, 75, 1325.0, 70.0),     # 450 satellites
)


def starlink_network_params() -> NetworkParams:
    """Network parameters of the Starlink shells as used in §4."""
    return NetworkParams(
        isl_bandwidth_kbps=STARLINK_BANDWIDTH_KBPS,
        uplink_bandwidth_kbps=STARLINK_BANDWIDTH_KBPS,
        min_elevation_deg=STARLINK_MIN_ELEVATION_DEG,
    )


def starlink_phase1_shells(
    satellite_compute: ComputeParams | None = None,
    limit: int | None = None,
) -> list[ShellConfig]:
    """Shell configurations of the phase I constellation.

    ``limit`` restricts the number of shells (e.g. ``limit=2`` keeps only the
    two lowest, densest shells, which are the only ones the §4 experiment
    ever selects as bridge servers).
    """
    compute = satellite_compute or ComputeParams(vcpu_count=2, memory_mib=512)
    shells = []
    for index, (planes, per_plane, altitude, inclination) in enumerate(_PHASE1_SHELLS):
        shells.append(
            ShellConfig(
                name=f"starlink-{index}",
                geometry=ShellGeometry(
                    planes=planes,
                    satellites_per_plane=per_plane,
                    altitude_km=altitude,
                    inclination_deg=inclination,
                    arc_of_ascending_nodes_deg=360.0,
                ),
                network=starlink_network_params(),
                compute=compute,
            )
        )
    if limit is not None:
        shells = shells[:limit]
    return shells


def starlink_first_shell(satellite_compute: ComputeParams | None = None) -> ShellConfig:
    """Only the 550 km, 72x22 shell (1,584 satellites)."""
    return starlink_phase1_shells(satellite_compute, limit=1)[0]


def starlink_phase1_total_satellites() -> int:
    """Total satellites across the five phase I shells (4,409)."""
    return sum(planes * per_plane for planes, per_plane, _, _ in _PHASE1_SHELLS)


@scenario("starlink-phase1")
def starlink_phase1_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    shell_limit: Optional[int] = None,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """The planned phase I Starlink constellation (up to 4,409 satellites).

    A bare-constellation configuration (no ground segment): the §4 meetup
    deployment on top of these shells is the ``west-africa-meetup`` scenario.
    ``shell_limit`` keeps only the lowest shells, as in
    :func:`starlink_phase1_shells`.
    """
    return Configuration(
        shells=tuple(starlink_phase1_shells(limit=shell_limit)),
        ground_stations=(),
        bounding_box=None,
        hosts=HostConfig(count=15, cpu_cores=32, memory_mib=64 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
