"""A mixed-operator scenario: Starlink, OneWeb and Kuiper shells together.

This configuration stresses the multi-shell uplink selection paths: each
ground station sees three operators whose shells differ in altitude
(550/630/1,200 km), pattern (Walker-delta vs. the OneWeb Walker-star with
its counter-rotating seam) and minimum elevation angle (25°/35°/15°), so
every elevation check, per-shell uplink bundle and shell-offset translation
is exercised in one topology.  Ground stations are spread across latitudes
— equatorial, mid-latitude and polar — because the shells' inclinations
make shell visibility latitude-dependent (only the near-polar OneWeb shell
covers the polar station).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    HostConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, GroundStation
from repro.scenarios.kuiper import kuiper_shells
from repro.scenarios.oneweb import oneweb_shell
from repro.scenarios.starlink import starlink_first_shell

#: Ground stations spanning equatorial to polar latitudes.
MIXED_GROUND_STATIONS = {
    "quito": GroundStation("quito", -0.1807, -78.4678),
    "berlin": GroundStation("berlin", 52.5200, 13.4050),
    "longyearbyen": GroundStation("longyearbyen", 78.2232, 15.6267),
}

#: Resources of the ground-station servers.
STATION_COMPUTE = ComputeParams(vcpu_count=4, memory_mib=4096)
#: Resources of the satellite servers.
SERVER_COMPUTE = ComputeParams(vcpu_count=2, memory_mib=512)


@scenario("mixed-operator")
def mixed_operator_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    kuiper_shell_limit: Optional[int] = 1,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """Configuration combining one shell per operator (plus optional Kuiper extras).

    The default keeps one shell each of Starlink (1,584 satellites at
    550 km), Kuiper (1,156 at 630 km) and OneWeb (648 at 1,200 km) — 3,388
    satellites across three operators; ``kuiper_shell_limit=None`` enables
    the full 3,236-satellite Kuiper system for a 5,468-satellite stress
    configuration.
    """
    shells = (
        starlink_first_shell(SERVER_COMPUTE),
        *kuiper_shells(SERVER_COMPUTE, limit=kuiper_shell_limit),
        oneweb_shell(SERVER_COMPUTE),
    )
    ground_stations = tuple(
        GroundStationConfig(station=station, compute=STATION_COMPUTE)
        for station in MIXED_GROUND_STATIONS.values()
    )
    return Configuration(
        shells=shells,
        ground_stations=ground_stations,
        bounding_box=None,
        hosts=HostConfig(count=4, cpu_cores=32, memory_mib=64 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
