"""The OneWeb first-generation constellation.

A single shell of 648 satellites in 18 near-polar planes of 36 satellites
at 1,200 km altitude and 87.9° inclination.  Like Iridium, OneWeb is a
Walker-star pattern: the ascending nodes are spread over only half the
globe (180° arc), which creates the two counter-rotating seam planes where
no inter-plane ISLs exist — exercising the same +GRID seam logic as the
DART case study, but at a ten times larger scale.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, ShellGeometry

#: Minimum elevation for OneWeb user terminals [deg].
ONEWEB_MIN_ELEVATION_DEG = 15.0
#: ISL / gateway link bandwidth assumed for OneWeb: 2.5 Gb/s class.
ONEWEB_BANDWIDTH_KBPS = 2_500_000.0


def oneweb_network_params() -> NetworkParams:
    """Network parameters of the OneWeb shell."""
    return NetworkParams(
        isl_bandwidth_kbps=ONEWEB_BANDWIDTH_KBPS,
        uplink_bandwidth_kbps=ONEWEB_BANDWIDTH_KBPS,
        min_elevation_deg=ONEWEB_MIN_ELEVATION_DEG,
    )


def oneweb_shell(satellite_compute: ComputeParams | None = None) -> ShellConfig:
    """Shell configuration of the OneWeb constellation (648 satellites)."""
    compute = satellite_compute or ComputeParams(vcpu_count=2, memory_mib=512)
    return ShellConfig(
        name="oneweb",
        geometry=ShellGeometry(
            planes=18,
            satellites_per_plane=36,
            altitude_km=1200.0,
            inclination_deg=87.9,
            arc_of_ascending_nodes_deg=180.0,
        ),
        network=oneweb_network_params(),
        compute=compute,
    )


def oneweb_total_satellites() -> int:
    """Total satellites of the OneWeb shell (648)."""
    return 18 * 36


@scenario("oneweb")
def oneweb_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """The OneWeb constellation (648 satellites, Walker-star seam at scale).

    A bare-constellation configuration (no ground segment), exercising the
    +GRID seam logic of the near-polar 180°-arc pattern.
    """
    return Configuration(
        shells=(oneweb_shell(),),
        ground_stations=(),
        bounding_box=None,
        hosts=HostConfig(count=3, cpu_cores=32, memory_mib=64 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
