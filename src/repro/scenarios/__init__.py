"""Ready-made scenario configurations from the paper's evaluation and beyond.

Every configuration constructor is registered with the scenario registry
(:mod:`repro.experiments.registry`) under a stable name, so experiments can
reference it declaratively (``repro.scenarios.get("pacific-dart")``,
``list_scenarios()``) as well as import it directly:

* :mod:`repro.scenarios.starlink` — the planned phase I Starlink constellation
  (five shells, 4,409 satellites; Fig. 1) — ``starlink-phase1``.
* :mod:`repro.scenarios.iridium` — the Iridium constellation used by the DART
  case study (66 satellites, 180° arc of ascending nodes; Fig. 10) —
  ``iridium``.
* :mod:`repro.scenarios.kuiper` — the Project Kuiper system (three shells,
  3,236 satellites) — ``kuiper``.
* :mod:`repro.scenarios.oneweb` — the OneWeb constellation (648 satellites,
  near-polar Walker-star, exercising the +GRID seam at scale) — ``oneweb``.
* :mod:`repro.scenarios.mixed` — a mixed-operator Starlink + Kuiper + OneWeb
  configuration stressing multi-shell uplink selection — ``mixed-operator``.
* :mod:`repro.scenarios.telesat` — the Telesat Lightspeed hybrid (a polar
  Walker-star shell plus an inclined Walker-delta shell, 298 satellites) —
  ``telesat-lightspeed``.
* :mod:`repro.scenarios.degraded` — a degraded-operator scenario on top of
  the mixed configuration: one operator's shell progressively loses ISLs
  through the fault-injection API — ``degraded-operator``.
* :mod:`repro.scenarios.west_africa` — the §4 meetup/video-conference
  deployment with clients in Accra, Abuja and Yaoundé and a cloud data centre
  in Johannesburg (Fig. 3) — ``west-africa-meetup``.
* :mod:`repro.scenarios.pacific` — the §5 real-time ocean environment alert
  system with 100 DART buoys and 200 data sinks in the Pacific (Figs. 9-11) —
  ``pacific-dart``.
"""

from repro.experiments.registry import (
    ScenarioEntry,
    UnknownScenarioError,
    build,
    entries,
    get,
    list_scenarios,
    scenario,
)
from repro.scenarios.starlink import (
    starlink_first_shell,
    starlink_phase1_configuration,
    starlink_phase1_shells,
    starlink_phase1_total_satellites,
)
from repro.scenarios.iridium import iridium_configuration, iridium_shell
from repro.scenarios.kuiper import (
    kuiper_configuration,
    kuiper_first_shell,
    kuiper_shells,
    kuiper_total_satellites,
)
from repro.scenarios.oneweb import (
    oneweb_configuration,
    oneweb_shell,
    oneweb_total_satellites,
)
from repro.scenarios.mixed import (
    MIXED_GROUND_STATIONS,
    mixed_operator_configuration,
)
from repro.scenarios.telesat import (
    TELESAT_GROUND_STATIONS,
    telesat_configuration,
    telesat_inclined_shell,
    telesat_polar_shell,
    telesat_shells,
    telesat_total_satellites,
)
from repro.scenarios.degraded import (
    DEFAULT_VICTIM_SHELL,
    OperatorDegradation,
    degraded_mixed_configuration,
    degraded_operator_configuration,
    victim_shell_index,
)
from repro.scenarios.west_africa import (
    CLIENT_LOCATIONS,
    CLOUD_LOCATION,
    west_africa_bounding_box,
    west_africa_configuration,
)
from repro.scenarios.pacific import (
    PACIFIC_TSUNAMI_WARNING_CENTER,
    dart_configuration,
    generate_buoys,
    generate_sinks,
)

__all__ = [
    "CLIENT_LOCATIONS",
    "CLOUD_LOCATION",
    "DEFAULT_VICTIM_SHELL",
    "MIXED_GROUND_STATIONS",
    "OperatorDegradation",
    "PACIFIC_TSUNAMI_WARNING_CENTER",
    "ScenarioEntry",
    "TELESAT_GROUND_STATIONS",
    "UnknownScenarioError",
    "build",
    "dart_configuration",
    "degraded_mixed_configuration",
    "degraded_operator_configuration",
    "entries",
    "generate_buoys",
    "generate_sinks",
    "get",
    "iridium_configuration",
    "iridium_shell",
    "kuiper_configuration",
    "kuiper_first_shell",
    "kuiper_shells",
    "kuiper_total_satellites",
    "list_scenarios",
    "mixed_operator_configuration",
    "oneweb_configuration",
    "oneweb_shell",
    "oneweb_total_satellites",
    "scenario",
    "starlink_first_shell",
    "starlink_phase1_configuration",
    "starlink_phase1_shells",
    "starlink_phase1_total_satellites",
    "telesat_configuration",
    "telesat_inclined_shell",
    "telesat_polar_shell",
    "telesat_shells",
    "telesat_total_satellites",
    "victim_shell_index",
    "west_africa_bounding_box",
    "west_africa_configuration",
]
