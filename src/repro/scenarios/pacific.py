"""The §5 Pacific DART remote-sensing scenario (paper Figs. 9-11).

100 data buoys in the Pacific Ocean send sensor readings over the Iridium
constellation; readings are processed with an LSTM network either centrally
at the Pacific Tsunami Warning Center (Ford Island, Hawaii) or on the Iridium
satellites, and results are distributed to 200 islands and ships in the
vicinity of the sensors.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.core.config import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    HostConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, GroundStation
from repro.scenarios.iridium import (
    IRIDIUM_ISL_BANDWIDTH_KBPS,
    IRIDIUM_SENSOR_BANDWIDTH_KBPS,
    iridium_shell,
)

#: The central processing location of the DART system (Ford Island, Hawaii).
PACIFIC_TSUNAMI_WARNING_CENTER = GroundStation("pacific-tsunami-warning-center", 21.3649, -157.9497)

#: Buoys and data sinks: 1 CPU core, 1,024 MB memory (§5.1).
SENSOR_COMPUTE = ComputeParams(vcpu_count=1, memory_mib=1024)
#: Central ground-station server: 8 cores, 8,192 MB memory (§5.1).
CENTRAL_COMPUTE = ComputeParams(vcpu_count=8, memory_mib=8192)

# The Pacific region: latitudes -40..50, longitudes 150..360-120 (wrapping).
_PACIFIC_LAT = (-40.0, 50.0)
_PACIFIC_LON_EAST = 150.0
_PACIFIC_LON_SPAN = 90.0  # degrees eastward from 150E, wrapping the antimeridian


def _wrap_longitude(longitude: float) -> float:
    wrapped = (longitude + 180.0) % 360.0 - 180.0
    return wrapped


def generate_buoys(count: int = 100, seed: int = 7) -> list[GroundStation]:
    """Deterministic pseudo-random DART buoy locations in the Pacific."""
    rng = np.random.default_rng(seed)
    buoys = []
    for index in range(count):
        latitude = float(rng.uniform(*_PACIFIC_LAT))
        longitude = _wrap_longitude(_PACIFIC_LON_EAST + float(rng.uniform(0.0, _PACIFIC_LON_SPAN)))
        buoys.append(GroundStation(f"buoy-{index}", latitude, longitude))
    return buoys


def generate_sinks(
    buoys: list[GroundStation], count: int = 200, seed: int = 11
) -> list[GroundStation]:
    """Ship/island data sinks placed in the vicinity of the sensor buoys."""
    rng = np.random.default_rng(seed)
    sinks = []
    for index in range(count):
        anchor = buoys[int(rng.integers(0, len(buoys)))]
        latitude = float(np.clip(anchor.latitude_deg + rng.uniform(-8.0, 8.0), -60.0, 60.0))
        longitude = _wrap_longitude(anchor.longitude_deg + float(rng.uniform(-8.0, 8.0)))
        sinks.append(GroundStation(f"sink-{index}", latitude, longitude))
    return sinks


@scenario("pacific-dart")
def dart_configuration(
    deployment: Literal["central", "satellite"] = "central",
    buoy_count: int = 100,
    sink_count: int = 200,
    duration_s: float = 900.0,
    update_interval_s: float = 5.0,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """Configuration of the §5 ocean environment alert experiment.

    ``deployment`` selects where the inference service runs: at the central
    Pacific Tsunami Warning Center ground station or on each Iridium
    satellite (device-to-device).  The satellite deployment gives satellite
    servers one core and 1,024 MB; the central deployment gives the ground
    station eight cores and 8,192 MB.
    """
    if deployment not in ("central", "satellite"):
        raise ValueError(f"unknown deployment: {deployment!r}")
    buoys = generate_buoys(buoy_count, seed=7)
    sinks = generate_sinks(buoys, sink_count, seed=11)
    ground_stations = [
        GroundStationConfig(
            station=station,
            compute=SENSOR_COMPUTE,
            uplink_bandwidth_kbps=IRIDIUM_SENSOR_BANDWIDTH_KBPS,
        )
        for station in buoys + sinks
    ]
    ground_stations.append(
        GroundStationConfig(
            station=PACIFIC_TSUNAMI_WARNING_CENTER,
            compute=CENTRAL_COMPUTE,
            uplink_bandwidth_kbps=IRIDIUM_ISL_BANDWIDTH_KBPS,
        )
    )
    return Configuration(
        shells=(iridium_shell(SENSOR_COMPUTE),),
        ground_stations=tuple(ground_stations),
        bounding_box=None,
        hosts=HostConfig(count=4, cpu_cores=32, memory_mib=32 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
