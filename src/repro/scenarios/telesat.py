"""The Telesat Lightspeed constellation: a polar + inclined hybrid.

Unlike the single-pattern systems (Starlink's Walker-delta shells, OneWeb's
near-polar Walker-star), Lightspeed combines **two complementary shells**
following Telesat's updated FCC filing (298 satellites):

* a **polar shell** — 78 satellites in 6 near-polar planes of 13 at
  1,015 km and 98.98° inclination.  Like Iridium and OneWeb it is a
  Walker-star pattern (ascending nodes over a 180° arc), so it has the two
  counter-rotating seam planes and provides the global/polar coverage the
  inclined shell cannot.
* an **inclined shell** — 220 satellites in 20 planes of 11 at 1,325 km and
  50.88° inclination, a Walker-delta pattern concentrating capacity over
  the populated mid-latitudes.

The hybrid stresses a code path none of the other scenarios exercises:
*both* seam logic (polar star) and delta phasing in one operator, with
uplink selection arbitrating between a high shell with polar reach and a
lower, denser shell — ground stations at high latitude see only the polar
shell, equatorial ones mostly the inclined shell, and mid-latitude ones
genuinely choose.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    ComputeParams,
    Configuration,
    GroundStationConfig,
    HostConfig,
    NetworkParams,
    ShellConfig,
)
from repro.experiments.registry import scenario
from repro.orbits import Epoch, GroundStation, ShellGeometry

#: Minimum elevation for Lightspeed user terminals [deg] (Telesat filing).
TELESAT_MIN_ELEVATION_DEG = 10.0
#: Optical ISL bandwidth class assumed for Lightspeed: 10 Gb/s.
TELESAT_ISL_BANDWIDTH_KBPS = 10_000_000.0
#: Ka-band uplink bandwidth class: 5 Gb/s.
TELESAT_UPLINK_BANDWIDTH_KBPS = 5_000_000.0

#: Ground stations spanning the coverage split of the two shells: the
#: inclined shell's footprint ends near 76° latitude (50.88° inclination
#: plus its ~25° coverage radius), so Alert (82.5°N) is polar-shell-only.
TELESAT_GROUND_STATIONS = {
    "singapore": GroundStation("singapore", 1.3521, 103.8198),
    "ottawa": GroundStation("ottawa", 45.4215, -75.6972),
    "alert": GroundStation("alert", 82.5007, -62.3481),
}

#: Resources of the ground-station servers.
STATION_COMPUTE = ComputeParams(vcpu_count=4, memory_mib=4096)
#: Resources of the satellite servers.
SERVER_COMPUTE = ComputeParams(vcpu_count=2, memory_mib=512)


def telesat_network_params() -> NetworkParams:
    """Network parameters of the Lightspeed shells."""
    return NetworkParams(
        isl_bandwidth_kbps=TELESAT_ISL_BANDWIDTH_KBPS,
        uplink_bandwidth_kbps=TELESAT_UPLINK_BANDWIDTH_KBPS,
        min_elevation_deg=TELESAT_MIN_ELEVATION_DEG,
    )


def telesat_polar_shell(satellite_compute: ComputeParams | None = None) -> ShellConfig:
    """The 1,015 km near-polar Walker-star shell (6 × 13 = 78 satellites)."""
    return ShellConfig(
        name="telesat-polar",
        geometry=ShellGeometry(
            planes=6,
            satellites_per_plane=13,
            altitude_km=1015.0,
            inclination_deg=98.98,
            arc_of_ascending_nodes_deg=180.0,
        ),
        network=telesat_network_params(),
        compute=satellite_compute or SERVER_COMPUTE,
    )


def telesat_inclined_shell(
    satellite_compute: ComputeParams | None = None,
) -> ShellConfig:
    """The 1,325 km inclined Walker-delta shell (20 × 11 = 220 satellites)."""
    return ShellConfig(
        name="telesat-inclined",
        geometry=ShellGeometry(
            planes=20,
            satellites_per_plane=11,
            altitude_km=1325.0,
            inclination_deg=50.88,
            arc_of_ascending_nodes_deg=360.0,
        ),
        network=telesat_network_params(),
        compute=satellite_compute or SERVER_COMPUTE,
    )


def telesat_shells(
    satellite_compute: ComputeParams | None = None,
) -> tuple[ShellConfig, ShellConfig]:
    """Both Lightspeed shells: polar star first, inclined delta second."""
    return (
        telesat_polar_shell(satellite_compute),
        telesat_inclined_shell(satellite_compute),
    )


def telesat_total_satellites() -> int:
    """Total satellites of the Lightspeed system (298)."""
    return sum(shell.geometry.total_satellites for shell in telesat_shells())


@scenario("telesat-lightspeed")
def telesat_configuration(
    duration_s: float = 600.0,
    update_interval_s: float = 2.0,
    seed: int = 0,
    epoch: Optional[Epoch] = None,
) -> Configuration:
    """A ready-to-run Lightspeed configuration (298 satellites, 3 stations).

    The stations are placed to exercise the coverage split: Alert (82.5°N)
    is only served by the polar shell, Singapore (1°N) predominantly by the
    inclined shell, Ottawa (45°N) by both.
    """
    ground_stations = tuple(
        GroundStationConfig(station=station, compute=STATION_COMPUTE)
        for station in TELESAT_GROUND_STATIONS.values()
    )
    return Configuration(
        shells=telesat_shells(),
        ground_stations=ground_stations,
        bounding_box=None,
        hosts=HostConfig(count=2, cpu_cores=32, memory_mib=64 * 1024),
        epoch=epoch if epoch is not None else Epoch(),
        update_interval_s=update_interval_s,
        duration_s=duration_s,
        seed=seed,
    )
