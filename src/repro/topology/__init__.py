"""Constellation network topology: ISLs, uplinks, link parameters, shortest paths."""

from repro.topology.graph import Link, LinkType, NetworkGraph, NodeIndex, TopologyDiff
from repro.topology.isl import grid_plus_isl_pairs
from repro.topology.linkparams import (
    link_delay_ms,
    propagation_delay_ms,
    serialization_delay_ms,
)
from repro.topology.paths import PathEngine, PathEngineStats, PathResult, ShortestPaths
from repro.topology.uplinks import visible_satellites, visible_satellites_batch

__all__ = [
    "Link",
    "LinkType",
    "NetworkGraph",
    "NodeIndex",
    "PathEngine",
    "PathEngineStats",
    "PathResult",
    "ShortestPaths",
    "TopologyDiff",
    "grid_plus_isl_pairs",
    "link_delay_ms",
    "propagation_delay_ms",
    "serialization_delay_ms",
    "visible_satellites",
    "visible_satellites_batch",
]
