"""Inter-satellite link topologies.

Celestial (following Bhattacherjee & Singla) assumes the +GRID pattern:
every satellite keeps a laser link to its predecessor and successor within
its own orbital plane, and one link each to the nearest neighbour in the two
adjacent planes (§2.1).

Walker-star seam behaviour
--------------------------

For Walker-delta shells (e.g. Starlink, ascending nodes spread over 360°)
the inter-plane links wrap around: the last plane links to the first, so
every satellite has exactly four ISLs.  For Walker-star shells such as
Iridium, whose ascending nodes only span 180°, the first and last planes are
counter-rotating: satellites on either side of that seam move in opposite
directions at a relative speed that makes laser links infeasible, so
:func:`grid_plus_isl_pairs` emits **no** pairs between the last and first
plane when ``geometry.is_polar_star`` is set (§5, Fig. 10).  Traffic between
the seam planes must route the long way around the shell, which is exactly
the asymmetry the paper's Fig. 10 Iridium topology shows.

The pair list of a shell is static — only link distances/delays change as
satellites move — which is why the constellation calculation precomputes the
pairs once (as flat node-index arrays) and reuses them for every snapshot.
"""

from __future__ import annotations

from repro.orbits.shells import ShellGeometry


def grid_plus_isl_pairs(geometry: ShellGeometry) -> list[tuple[int, int]]:
    """Return the +GRID ISL pairs of a shell as flat in-shell identifiers.

    Each pair ``(a, b)`` satisfies ``a < b``; links are undirected and listed
    exactly once.
    """
    planes = geometry.planes
    per_plane = geometry.satellites_per_plane
    pairs: set[tuple[int, int]] = set()

    def flat(plane: int, index: int) -> int:
        return plane * per_plane + index

    for plane in range(planes):
        for index in range(per_plane):
            this = flat(plane, index)
            # Intra-plane link to the successor (rings close within a plane
            # whenever there is more than one satellite in it).
            if per_plane > 1:
                successor = flat(plane, (index + 1) % per_plane)
                if successor != this:
                    pairs.add((min(this, successor), max(this, successor)))
            # Inter-plane link to the same slot in the next plane.  For a
            # Walker-star shell the last and first planes form a seam across
            # which no ISL is possible.
            if planes > 1:
                next_plane = plane + 1
                if next_plane >= planes:
                    if geometry.is_polar_star:
                        continue
                    next_plane = 0
                neighbor = flat(next_plane, index)
                pairs.add((min(this, neighbor), max(this, neighbor)))
    return sorted(pairs)


def isl_count(geometry: ShellGeometry) -> int:
    """Number of +GRID ISLs in a shell."""
    return len(grid_plus_isl_pairs(geometry))
