"""Link parameter computation: propagation delay, serialization, bandwidth.

Both laser ISLs (vacuum) and RF ground-to-satellite links propagate at the
speed of light ``c`` (§4.1).  Celestial injects the resulting delays with a
0.1 ms accuracy via tc-netem (§3.1); the same quantisation is available here
so emulated values match what the testbed would install.

Delay grid
----------

Raw ``distance / c`` delays carry ~16 significant digits, of which the
testbed can install at best four (netem's 0.1 ms).  Worse, that excess
precision is numerically hostile: the +GRID topology contains thousands of
path pairs whose delays differ only at the 1e-15 relative level, so every
epoch's sub-microsecond drift reshuffles shortest-path ties and forces the
incremental path engine to chase noise.  :func:`link_delay_ms` therefore
snaps every link delay onto a *binary* grid of :data:`DELAY_GRID_MS`
(2^-20 ms ≈ 0.95 ns, five orders of magnitude below netem resolution).
On-grid delays are exact in float64 and so are all path sums up to seconds
of total delay, which makes shortest-path comparisons exact: equal-delay
alternatives are *bitwise* ties instead of float-noise near-ties, and a
shortest-path tree only changes when link geometry genuinely crosses a
grid boundary.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants

#: netem delay quantisation used by Celestial [ms].
NETEM_DELAY_RESOLUTION_MS = 0.1

#: Binary quantum [ms] all computed link delays snap to (≈ 0.95 ns).  A
#: power of two, so on-grid values and their path sums (up to 2^13 ms) are
#: exactly representable in float64 — five orders of magnitude below the
#: 0.1 ms netem resolution of the installed per-pair delays; see the
#: module docstring.
DELAY_GRID_MS = 2.0**-20

_DELAY_GRID_INVERSE = 2.0**20


def propagation_delay_ms(distance_km, speed_km_s: float = constants.SPEED_OF_LIGHT_KM_S):
    """One-way propagation delay [ms] over a distance at a propagation speed."""
    return np.asarray(distance_km, dtype=float) / speed_km_s * 1000.0


def serialization_delay_ms(size_bytes: float, bandwidth_kbps: float) -> float:
    """Time [ms] to push ``size_bytes`` onto a link of ``bandwidth_kbps``."""
    if bandwidth_kbps <= 0:
        raise ValueError("bandwidth must be positive")
    return size_bytes * 8.0 / bandwidth_kbps


def link_delay_ms(
    distance_km,
    quantize: bool = False,
    speed_km_s: float = constants.SPEED_OF_LIGHT_KM_S,
):
    """One-way link delay [ms], snapped to the sub-nanosecond delay grid.

    With ``quantize`` the coarse 0.1 ms netem resolution is applied
    instead (what the testbed would actually install).
    """
    delay = propagation_delay_ms(distance_km, speed_km_s)
    if quantize:
        delay = np.round(delay / NETEM_DELAY_RESOLUTION_MS) * NETEM_DELAY_RESOLUTION_MS
    else:
        delay = np.rint(delay * _DELAY_GRID_INVERSE) * DELAY_GRID_MS
    if np.ndim(delay) == 0:
        return float(delay)
    return delay


def fiber_delay_ms(distance_km) -> float:
    """One-way delay [ms] through terrestrial fiber (~47% slower than vacuum)."""
    return float(
        np.asarray(distance_km, dtype=float) / constants.SPEED_OF_LIGHT_FIBER_KM_S * 1000.0
    )
