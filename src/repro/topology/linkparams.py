"""Link parameter computation: propagation delay, serialization, bandwidth.

Both laser ISLs (vacuum) and RF ground-to-satellite links propagate at the
speed of light ``c`` (§4.1).  Celestial injects the resulting delays with a
0.1 ms accuracy via tc-netem (§3.1); the same quantisation is available here
so emulated values match what the testbed would install.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants

#: netem delay quantisation used by Celestial [ms].
NETEM_DELAY_RESOLUTION_MS = 0.1


def propagation_delay_ms(distance_km, speed_km_s: float = constants.SPEED_OF_LIGHT_KM_S):
    """One-way propagation delay [ms] over a distance at a propagation speed."""
    return np.asarray(distance_km, dtype=float) / speed_km_s * 1000.0


def serialization_delay_ms(size_bytes: float, bandwidth_kbps: float) -> float:
    """Time [ms] to push ``size_bytes`` onto a link of ``bandwidth_kbps``."""
    if bandwidth_kbps <= 0:
        raise ValueError("bandwidth must be positive")
    return size_bytes * 8.0 / bandwidth_kbps


def link_delay_ms(
    distance_km,
    quantize: bool = False,
    speed_km_s: float = constants.SPEED_OF_LIGHT_KM_S,
):
    """One-way link delay [ms], optionally quantised to the netem resolution."""
    delay = propagation_delay_ms(distance_km, speed_km_s)
    if quantize:
        delay = np.round(delay / NETEM_DELAY_RESOLUTION_MS) * NETEM_DELAY_RESOLUTION_MS
    if np.ndim(delay) == 0:
        return float(delay)
    return delay


def fiber_delay_ms(distance_km) -> float:
    """One-way delay [ms] through terrestrial fiber (~47% slower than vacuum)."""
    return float(
        np.asarray(distance_km, dtype=float) / constants.SPEED_OF_LIGHT_FIBER_KM_S * 1000.0
    )
