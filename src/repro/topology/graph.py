"""Network graph data structures for the constellation topology.

Nodes are satellites (addressed by shell index and in-shell identifier) and
ground stations (addressed by name).  Internally every node maps to a flat
integer index so that adjacency matrices and shortest-path algorithms can
operate on NumPy/SciPy structures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np
from scipy import sparse


class LinkType(enum.Enum):
    """Type of a constellation network link."""

    ISL = "isl"
    UPLINK = "uplink"
    HOST = "host"


@dataclass(frozen=True)
class Link:
    """An undirected network link between two flat node indices."""

    node_a: int
    node_b: int
    distance_km: float
    delay_ms: float
    bandwidth_kbps: float
    link_type: LinkType = LinkType.ISL

    def other(self, node: int) -> int:
        """The endpoint of the link that is not ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node} is not an endpoint of this link")


class NodeIndex:
    """Bidirectional mapping between logical node names and flat indices.

    Satellites come first, ordered by shell then by in-shell identifier;
    ground stations follow in registration order.  This matches Celestial's
    address-space layout where each (shell, id) pair and each ground station
    receives a deterministic network address (§3.2).
    """

    def __init__(self, shell_sizes: Iterable[int], ground_station_names: Iterable[str]):
        self.shell_sizes = list(shell_sizes)
        self.ground_station_names = list(ground_station_names)
        if len(set(self.ground_station_names)) != len(self.ground_station_names):
            raise ValueError("ground station names must be unique")
        self._shell_offsets: list[int] = []
        offset = 0
        for size in self.shell_sizes:
            if size <= 0:
                raise ValueError("shell sizes must be positive")
            self._shell_offsets.append(offset)
            offset += size
        self.satellite_count = offset
        self._gst_offset = offset
        self._gst_indices = {
            name: self._gst_offset + position
            for position, name in enumerate(self.ground_station_names)
        }

    def __len__(self) -> int:
        return self.satellite_count + len(self.ground_station_names)

    @property
    def node_count(self) -> int:
        """Total number of nodes (satellites + ground stations)."""
        return len(self)

    def satellite(self, shell: int, identifier: int) -> int:
        """Flat index of a satellite."""
        if not 0 <= shell < len(self.shell_sizes):
            raise IndexError(f"shell {shell} out of range")
        if not 0 <= identifier < self.shell_sizes[shell]:
            raise IndexError(f"satellite {identifier} out of range for shell {shell}")
        return self._shell_offsets[shell] + identifier

    def ground_station(self, name: str) -> int:
        """Flat index of a ground station."""
        if name not in self._gst_indices:
            raise KeyError(f"unknown ground station: {name}")
        return self._gst_indices[name]

    def is_satellite(self, index: int) -> bool:
        """Whether a flat index refers to a satellite."""
        return 0 <= index < self.satellite_count

    def is_ground_station(self, index: int) -> bool:
        """Whether a flat index refers to a ground station."""
        return self.satellite_count <= index < len(self)

    def describe(self, index: int) -> tuple[str, int, int | str]:
        """Human-readable description: ('sat', shell, id) or ('gst', -1, name)."""
        if index < 0 or index >= len(self):
            raise IndexError(f"node index {index} out of range")
        if self.is_satellite(index):
            for shell, offset in enumerate(self._shell_offsets):
                if index < offset + self.shell_sizes[shell]:
                    return ("sat", shell, index - offset)
        return ("gst", -1, self.ground_station_names[index - self._gst_offset])

    def satellites_of_shell(self, shell: int) -> range:
        """Flat index range of all satellites of one shell."""
        offset = self._shell_offsets[shell]
        return range(offset, offset + self.shell_sizes[shell])

    def ground_station_indices(self) -> range:
        """Flat index range of all ground stations."""
        return range(self._gst_offset, len(self))


@dataclass
class NetworkGraph:
    """A snapshot of the constellation network at one point in time."""

    index: NodeIndex
    links: list[Link] = field(default_factory=list)

    def add_link(self, link: Link) -> None:
        """Add an undirected link to the graph."""
        if link.node_a == link.node_b:
            raise ValueError("self-links are not allowed")
        if not (0 <= link.node_a < len(self.index) and 0 <= link.node_b < len(self.index)):
            raise ValueError("link endpoints out of range")
        self.links.append(link)

    def delay_matrix(self) -> sparse.csr_matrix:
        """Sparse symmetric matrix of one-way link delays [ms]."""
        n = len(self.index)
        if not self.links:
            return sparse.csr_matrix((n, n))
        rows, cols, data = [], [], []
        for link in self.links:
            rows.extend((link.node_a, link.node_b))
            cols.extend((link.node_b, link.node_a))
            data.extend((link.delay_ms, link.delay_ms))
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    def links_of(self, node: int) -> list[Link]:
        """All links incident to a node."""
        return [link for link in self.links if node in (link.node_a, link.node_b)]

    def link_between(self, node_a: int, node_b: int) -> Optional[Link]:
        """The link between two nodes, or None if they are not adjacent."""
        for link in self.links:
            if {link.node_a, link.node_b} == {node_a, node_b}:
                return link
        return None

    def degree(self, node: int) -> int:
        """Number of links incident to a node."""
        return len(self.links_of(node))

    def total_links(self) -> int:
        """Number of undirected links in the graph."""
        return len(self.links)

    def bandwidth_between(self, node_a: int, node_b: int) -> float:
        """Bandwidth of the direct link between two nodes [kbps], 0 if absent."""
        link = self.link_between(node_a, node_b)
        return link.bandwidth_kbps if link else 0.0

    def as_networkx(self):
        """Export to a networkx graph (used by the animation/export component)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.index)))
        for link in self.links:
            graph.add_edge(
                link.node_a,
                link.node_b,
                delay_ms=link.delay_ms,
                distance_km=link.distance_km,
                bandwidth_kbps=link.bandwidth_kbps,
                link_type=link.link_type.value,
            )
        return graph
