"""Network graph data structures for the constellation topology.

Nodes are satellites (addressed by shell index and in-shell identifier) and
ground stations (addressed by name).  Internally every node maps to a flat
integer index so that adjacency matrices and shortest-path algorithms can
operate on NumPy/SciPy structures.

Array-backed layout
-------------------

:class:`NetworkGraph` stores the edge set in structure-of-arrays form: five
parallel NumPy arrays (``node_a``, ``node_b``, ``distance_km``, ``delay_ms``,
``bandwidth_kbps``) plus an ``int8`` link-type code array.  Links can be
appended one at a time (:meth:`NetworkGraph.add_link`) or in bulk from arrays
(:meth:`NetworkGraph.add_links`); the constellation calculation uses the bulk
path so that a full snapshot is built from a handful of array appends instead
of one Python call per link.

Derived structures are built lazily on first query and cached until the edge
set changes:

* a CSR adjacency (``indptr``/neighbour/edge-id arrays) for O(degree)
  :meth:`NetworkGraph.links_of` and :meth:`NetworkGraph.degree`;
* a hash map from the packed node pair ``min(a,b) * n + max(a,b)`` to the
  edge id for O(1) :meth:`NetworkGraph.link_between`, plus a sorted key array
  for the vectorised :meth:`NetworkGraph.edge_ids_between`;
* the symmetric sparse delay matrix used by the shortest-path solvers.

Duplicate links between the same node pair are deduplicated when the edge
arrays are finalised: only the minimum-delay link of each pair is kept (the
seed implementation silently *summed* duplicate delays in the COO→CSR
construction of :meth:`NetworkGraph.delay_matrix`, inflating delays).
Zero-delay links are clamped to :data:`DELAY_EPSILON_MS` in the delay matrix
so that ``scipy.sparse.csgraph`` does not confuse them with absent edges
(explicit zeros are treated as no-edge, which made co-located nodes
unreachable).

The legacy object API — :class:`Link` dataclasses, ``graph.links``,
``links_of`` and ``link_between`` — is preserved as thin views over the
arrays, so existing consumers (animation export, tests, benchmarks) keep
working unchanged.

Epoch-to-epoch diffs
--------------------

Consecutive constellation epochs share almost their entire edge structure:
ISL endpoints are static per shell and only a small fraction of uplinks
appear or disappear between updates.  :meth:`NetworkGraph.diff_from`
compares two epochs' edge arrays and emits a :class:`TopologyDiff` —
``links_added`` / ``links_removed`` / ``delay_changed`` /
``bandwidth_changed`` edge-id index arrays — which the coordinator shards
into per-host slices instead of replaying the full state.
:meth:`NetworkGraph.structurally_equal` answers the cheaper "same edge set?"
question.  :meth:`NetworkGraph.from_edge_arrays` builds a finalised graph
directly from parallel arrays, optionally sharing the derived caches (sorted
pair keys, CSR adjacency, delay-matrix structure) of a structurally
identical previous epoch so that steady-state updates skip the argsort and
sparse-matrix reconstruction entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import sparse

#: Delay [ms] substituted for exact-zero link delays in :meth:`NetworkGraph.delay_matrix`.
#: ``scipy.sparse.csgraph`` treats explicit zeros as "no edge", so a true zero
#: would make co-located nodes unreachable.  The value is small enough that the
#: accumulated error over any realistic hop count stays far below measurement
#: precision (1e-9 ms per hop).
DELAY_EPSILON_MS = 1e-9


class LinkType(enum.Enum):
    """Type of a constellation network link."""

    ISL = "isl"
    UPLINK = "uplink"
    HOST = "host"


#: Stable integer codes used in the packed link-type array.
_LINK_TYPE_BY_CODE: tuple[LinkType, ...] = (LinkType.ISL, LinkType.UPLINK, LinkType.HOST)
_CODE_BY_LINK_TYPE: dict[LinkType, int] = {
    link_type: code for code, link_type in enumerate(_LINK_TYPE_BY_CODE)
}


@dataclass(frozen=True)
class Link:
    """An undirected network link between two flat node indices."""

    node_a: int
    node_b: int
    distance_km: float
    delay_ms: float
    bandwidth_kbps: float
    link_type: LinkType = LinkType.ISL

    def other(self, node: int) -> int:
        """The endpoint of the link that is not ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"node {node} is not an endpoint of this link")


@dataclass(frozen=True)
class TopologyDiff:
    """Edge-level difference between two epochs of the constellation network.

    The index arrays refer to edge ids: ``links_added``, ``delay_changed``
    and ``bandwidth_changed`` index into the *current* graph's edge arrays,
    ``links_removed`` into the *previous* graph's.  ``delay_changed`` and
    ``bandwidth_changed`` cover pairs present in both epochs whose attribute
    value differs; a pair that (dis)appeared is only reported as
    added/removed.  Both graphs are kept on the diff so consumers (the
    coordinator's per-host slicing, the virtual network) can resolve ids to
    endpoints and new values without a separate lookup channel.
    """

    previous: "NetworkGraph"
    current: "NetworkGraph"
    links_added: np.ndarray
    links_removed: np.ndarray
    delay_changed: np.ndarray
    bandwidth_changed: np.ndarray
    #: Lazily filled one-element cache of :meth:`edge_id_map` (the dataclass
    #: is frozen, so the memo lives in a mutable holder).
    _id_map_cache: list = field(default_factory=list, init=False, repr=False, compare=False)

    @property
    def structural_change_count(self) -> int:
        """Number of links that appeared or disappeared."""
        return int(self.links_added.size + self.links_removed.size)

    @property
    def change_count(self) -> int:
        """Total number of changed edges (structural + attribute changes)."""
        return self.structural_change_count + int(
            self.delay_changed.size + self.bandwidth_changed.size
        )

    @property
    def is_empty(self) -> bool:
        """Whether the two epochs are byte-identical at the edge level."""
        return self.change_count == 0

    @property
    def is_structural_noop(self) -> bool:
        """Whether the edge *set* is unchanged (only delays/bandwidths moved)."""
        return self.structural_change_count == 0

    # -- endpoint / value views ------------------------------------------

    def added_endpoints(self) -> np.ndarray:
        """``(k, 2)`` node pairs of the added links (current-graph order)."""
        return np.column_stack(
            (self.current.node_a[self.links_added], self.current.node_b[self.links_added])
        )

    def removed_endpoints(self) -> np.ndarray:
        """``(k, 2)`` node pairs of the removed links (previous-graph order)."""
        return np.column_stack(
            (self.previous.node_a[self.links_removed], self.previous.node_b[self.links_removed])
        )

    def delay_changed_endpoints(self) -> np.ndarray:
        """``(k, 2)`` node pairs of surviving links whose delay changed."""
        return np.column_stack(
            (self.current.node_a[self.delay_changed], self.current.node_b[self.delay_changed])
        )

    def delay_changed_values_ms(self) -> np.ndarray:
        """New one-way delays [ms] of the ``delay_changed`` links."""
        return self.current.delays_ms[self.delay_changed]

    def bandwidth_changed_endpoints(self) -> np.ndarray:
        """``(k, 2)`` node pairs of surviving links whose bandwidth changed."""
        return np.column_stack(
            (self.current.node_a[self.bandwidth_changed], self.current.node_b[self.bandwidth_changed])
        )

    def bandwidth_changed_values_kbps(self) -> np.ndarray:
        """New bandwidths [kbps] of the ``bandwidth_changed`` links."""
        return self.current.bandwidths_kbps[self.bandwidth_changed]

    def edge_id_map(self) -> np.ndarray:
        """Previous-graph edge id → current-graph edge id (``-1`` if removed).

        Lets diff consumers carry per-edge indices (e.g. the path engine's
        tree edge ids) across a structural epoch with one gather instead of
        a fresh pair lookup.  When both epochs share their key layout the
        map is the identity; otherwise it is derived from the sorted key
        arrays.  Computed once per diff and cached.
        """
        if self._id_map_cache:
            return self._id_map_cache[0]
        previous, current = self.previous, self.current
        previous._finalize()
        current._finalize()
        if (
            previous._keys is current._keys
            or np.array_equal(previous._keys, current._keys)
        ):
            id_map = np.arange(previous._node_a.size, dtype=np.int64)
        else:
            # Both key arrays are sorted and unique, so one searchsorted
            # pass matches them — noticeably cheaper than ``intersect1d``,
            # which concatenates and re-sorts the union.
            positions = np.searchsorted(
                current._sorted_keys, previous._sorted_keys
            )
            positions[positions >= current._sorted_keys.size] = 0
            surviving = (
                current._sorted_keys[positions] == previous._sorted_keys
            )
            id_map = np.full(previous._node_a.size, -1, dtype=np.int64)
            id_map[previous._sorted_edge_ids[surviving]] = (
                current._sorted_edge_ids[positions[surviving]]
            )
        self._id_map_cache.append(id_map)
        return id_map

    def summary(self) -> dict[str, int]:
        """Compact counters (used by logging and the info API)."""
        return {
            "links_added": int(self.links_added.size),
            "links_removed": int(self.links_removed.size),
            "delay_changed": int(self.delay_changed.size),
            "bandwidth_changed": int(self.bandwidth_changed.size),
        }


class NodeIndex:
    """Bidirectional mapping between logical node names and flat indices.

    Satellites come first, ordered by shell then by in-shell identifier;
    ground stations follow in registration order.  This matches Celestial's
    address-space layout where each (shell, id) pair and each ground station
    receives a deterministic network address (§3.2).
    """

    def __init__(self, shell_sizes: Iterable[int], ground_station_names: Iterable[str]):
        self.shell_sizes = list(shell_sizes)
        self.ground_station_names = list(ground_station_names)
        if len(set(self.ground_station_names)) != len(self.ground_station_names):
            raise ValueError("ground station names must be unique")
        self._shell_offsets: list[int] = []
        offset = 0
        for size in self.shell_sizes:
            if size <= 0:
                raise ValueError("shell sizes must be positive")
            self._shell_offsets.append(offset)
            offset += size
        self.satellite_count = offset
        self._gst_offset = offset
        self._gst_indices = {
            name: self._gst_offset + position
            for position, name in enumerate(self.ground_station_names)
        }

    def __len__(self) -> int:
        return self.satellite_count + len(self.ground_station_names)

    @property
    def node_count(self) -> int:
        """Total number of nodes (satellites + ground stations)."""
        return len(self)

    def satellite(self, shell: int, identifier: int) -> int:
        """Flat index of a satellite."""
        if not 0 <= shell < len(self.shell_sizes):
            raise IndexError(f"shell {shell} out of range")
        if not 0 <= identifier < self.shell_sizes[shell]:
            raise IndexError(f"satellite {identifier} out of range for shell {shell}")
        return self._shell_offsets[shell] + identifier

    def shell_offset(self, shell: int) -> int:
        """Flat index of the first satellite of a shell."""
        if not 0 <= shell < len(self.shell_sizes):
            raise IndexError(f"shell {shell} out of range")
        return self._shell_offsets[shell]

    def ground_station(self, name: str) -> int:
        """Flat index of a ground station."""
        if name not in self._gst_indices:
            raise KeyError(f"unknown ground station: {name}")
        return self._gst_indices[name]

    def is_satellite(self, index: int) -> bool:
        """Whether a flat index refers to a satellite."""
        return 0 <= index < self.satellite_count

    def is_ground_station(self, index: int) -> bool:
        """Whether a flat index refers to a ground station."""
        return self.satellite_count <= index < len(self)

    def describe(self, index: int) -> tuple[str, int, int | str]:
        """Human-readable description: ('sat', shell, id) or ('gst', -1, name)."""
        if index < 0 or index >= len(self):
            raise IndexError(f"node index {index} out of range")
        if self.is_satellite(index):
            for shell, offset in enumerate(self._shell_offsets):
                if index < offset + self.shell_sizes[shell]:
                    return ("sat", shell, index - offset)
        return ("gst", -1, self.ground_station_names[index - self._gst_offset])

    def satellites_of_shell(self, shell: int) -> range:
        """Flat index range of all satellites of one shell."""
        offset = self._shell_offsets[shell]
        return range(offset, offset + self.shell_sizes[shell])

    def ground_station_indices(self) -> range:
        """Flat index range of all ground stations."""
        return range(self._gst_offset, len(self))


class NetworkGraph:
    """A snapshot of the constellation network at one point in time.

    Edges are stored as parallel NumPy arrays (see the module docstring for
    the layout); the :class:`Link` object API is served from lazily built
    views over those arrays.
    """

    def __init__(self, index: NodeIndex, links: Optional[Iterable[Link]] = None):
        self.index = index
        self._node_count = len(index)
        # Pending edge chunks: (node_a, node_b, distance, delay, bandwidth, type_code).
        self._chunks: list[tuple[np.ndarray, ...]] = []
        # Finalised (deduplicated) edge arrays and derived caches.
        self._finalized = False
        self._node_a = np.empty(0, dtype=np.int64)
        self._node_b = np.empty(0, dtype=np.int64)
        self._distance_km = np.empty(0, dtype=np.float64)
        self._delay_ms = np.empty(0, dtype=np.float64)
        self._bandwidth_kbps = np.empty(0, dtype=np.float64)
        self._type_code = np.empty(0, dtype=np.int8)
        self._edge_of: Optional[dict[int, int]] = None
        self._keys = np.empty(0, dtype=np.int64)
        self._sorted_keys = np.empty(0, dtype=np.int64)
        self._sorted_edge_ids = np.empty(0, dtype=np.int64)
        self._csr_template: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._adj_indptr: Optional[np.ndarray] = None
        self._adj_nodes: Optional[np.ndarray] = None
        self._adj_edges: Optional[np.ndarray] = None
        self._clamped_delays: Optional[np.ndarray] = None
        self._adj_weights: Optional[np.ndarray] = None
        self._adj_lists: Optional[tuple[list, list, list]] = None
        self._links_view: Optional[list[Link]] = None
        if links is not None:
            for link in links:
                self.add_link(link)

    # -- edge construction -------------------------------------------------

    def add_link(self, link: Link) -> None:
        """Add an undirected link to the graph."""
        if link.node_a == link.node_b:
            raise ValueError("self-links are not allowed")
        if not (0 <= link.node_a < self._node_count and 0 <= link.node_b < self._node_count):
            raise ValueError("link endpoints out of range")
        self._chunks.append(
            (
                np.array([link.node_a], dtype=np.int64),
                np.array([link.node_b], dtype=np.int64),
                np.array([link.distance_km], dtype=np.float64),
                np.array([link.delay_ms], dtype=np.float64),
                np.array([link.bandwidth_kbps], dtype=np.float64),
                np.array([_CODE_BY_LINK_TYPE[link.link_type]], dtype=np.int8),
            )
        )
        self._invalidate()

    def add_links(
        self,
        node_a: np.ndarray,
        node_b: np.ndarray,
        distance_km: np.ndarray,
        delay_ms: np.ndarray,
        bandwidth_kbps: np.ndarray | float,
        link_type: LinkType = LinkType.ISL,
    ) -> None:
        """Bulk-append undirected links from parallel arrays.

        ``bandwidth_kbps`` may be a scalar (broadcast over all links).  This
        is the hot path used by the constellation calculation: one call per
        shell for the ISLs and one per ground-station/shell pair for the
        uplinks, instead of one :meth:`add_link` per edge.
        """
        node_a = np.ascontiguousarray(node_a, dtype=np.int64)
        node_b = np.ascontiguousarray(node_b, dtype=np.int64)
        if node_a.shape != node_b.shape or node_a.ndim != 1:
            raise ValueError("endpoint arrays must be 1-D and of equal length")
        if node_a.size == 0:
            return
        if np.any(node_a == node_b):
            raise ValueError("self-links are not allowed")
        lo = min(int(node_a.min()), int(node_b.min()))
        hi = max(int(node_a.max()), int(node_b.max()))
        if lo < 0 or hi >= self._node_count:
            raise ValueError("link endpoints out of range")
        count = node_a.size
        distance_km = np.broadcast_to(
            np.asarray(distance_km, dtype=np.float64), (count,)
        ).copy()
        delay_ms = np.broadcast_to(np.asarray(delay_ms, dtype=np.float64), (count,)).copy()
        bandwidth = np.broadcast_to(
            np.asarray(bandwidth_kbps, dtype=np.float64), (count,)
        ).copy()
        type_code = np.full(count, _CODE_BY_LINK_TYPE[link_type], dtype=np.int8)
        self._chunks.append((node_a, node_b, distance_km, delay_ms, bandwidth, type_code))
        self._invalidate()

    @classmethod
    def from_edge_arrays(
        cls,
        index: NodeIndex,
        node_a: np.ndarray,
        node_b: np.ndarray,
        distance_km: np.ndarray,
        delay_ms: np.ndarray,
        bandwidth_kbps: np.ndarray,
        type_code: np.ndarray,
        structure_from: Optional["NetworkGraph"] = None,
    ) -> "NetworkGraph":
        """Build a finalised graph directly from parallel edge arrays.

        This is the differential-update fast path: the caller provides the
        complete edge set (endpoint pairs must be unique — verified cheaply
        from the sorted keys) and the graph skips the chunked ``add_links``
        append/deduplicate machinery.  When ``structure_from`` is a finalised
        graph over an equally sized node index whose edge keys match in
        insertion order — the steady-state case, where only delays and
        bandwidths moved — its derived caches (sorted key array, pair-key
        hash map, CSR adjacency and the delay-matrix structure template) are
        shared instead of recomputed; none of them are ever mutated after
        construction, so sharing is safe.
        """
        graph = cls(index)
        graph._node_a = np.ascontiguousarray(node_a, dtype=np.int64)
        graph._node_b = np.ascontiguousarray(node_b, dtype=np.int64)
        count = graph._node_a.size
        if graph._node_b.size != count:
            raise ValueError("endpoint arrays must be of equal length")
        graph._distance_km = np.ascontiguousarray(distance_km, dtype=np.float64)
        graph._delay_ms = np.ascontiguousarray(delay_ms, dtype=np.float64)
        graph._bandwidth_kbps = np.ascontiguousarray(bandwidth_kbps, dtype=np.float64)
        graph._type_code = np.ascontiguousarray(type_code, dtype=np.int8)
        if count:
            if np.any(graph._node_a == graph._node_b):
                raise ValueError("self-links are not allowed")
            lo = min(int(graph._node_a.min()), int(graph._node_b.min()))
            hi = max(int(graph._node_a.max()), int(graph._node_b.max()))
            if lo < 0 or hi >= graph._node_count:
                raise ValueError("link endpoints out of range")
        keys = (
            np.minimum(graph._node_a, graph._node_b) * np.int64(graph._node_count)
            + np.maximum(graph._node_a, graph._node_b)
        )
        graph._keys = keys
        if (
            structure_from is not None
            and structure_from._finalized
            and structure_from._node_count == graph._node_count
            and np.array_equal(keys, structure_from._keys)
        ):
            graph._sorted_keys = structure_from._sorted_keys
            graph._sorted_edge_ids = structure_from._sorted_edge_ids
            graph._edge_of = structure_from._edge_of
            graph._adj_indptr = structure_from._adj_indptr
            graph._adj_nodes = structure_from._adj_nodes
            graph._adj_edges = structure_from._adj_edges
            graph._csr_template = structure_from._csr_template
        else:
            sort = np.argsort(keys)
            if keys.size and np.any(np.diff(keys[sort]) == 0):
                raise ValueError("from_edge_arrays requires unique node pairs")
            graph._sorted_keys = keys[sort]
            graph._sorted_edge_ids = sort.astype(np.int64)
        graph._finalized = True
        return graph

    def _invalidate(self) -> None:
        self._finalized = False
        self._links_view = None
        self._edge_of = None
        self._adj_indptr = None
        self._adj_nodes = None
        self._adj_edges = None
        self._csr_template = None
        self._clamped_delays = None
        self._adj_weights = None
        self._adj_lists = None

    def _finalize(self) -> None:
        """Concatenate pending chunks and deduplicate node pairs (min delay)."""
        if self._finalized:
            return
        if self._chunks:
            arrays = [self._node_a, self._node_b, self._distance_km,
                      self._delay_ms, self._bandwidth_kbps, self._type_code]
            merged = []
            for base, column in zip(arrays, zip(*self._chunks)):
                merged.append(np.concatenate([base, *column]))
            (self._node_a, self._node_b, self._distance_km,
             self._delay_ms, self._bandwidth_kbps, self._type_code) = merged
            self._chunks = []
        keys = (
            np.minimum(self._node_a, self._node_b) * np.int64(self._node_count)
            + np.maximum(self._node_a, self._node_b)
        )
        sort = np.argsort(keys)
        if keys.size and np.any(np.diff(keys[sort]) == 0):
            # Keep the minimum-delay link per pair (first added wins ties),
            # preserving the insertion order of the survivors.
            order = np.lexsort((np.arange(keys.size), self._delay_ms, keys))
            _, first = np.unique(keys[order], return_index=True)
            keep = np.sort(order[first])
            self._node_a = self._node_a[keep]
            self._node_b = self._node_b[keep]
            self._distance_km = self._distance_km[keep]
            self._delay_ms = self._delay_ms[keep]
            self._bandwidth_kbps = self._bandwidth_kbps[keep]
            self._type_code = self._type_code[keep]
            keys = keys[keep]
            sort = np.argsort(keys)
        self._keys = keys
        self._sorted_keys = keys[sort]
        self._sorted_edge_ids = sort.astype(np.int64)
        self._finalized = True

    def _edge_map(self) -> dict[int, int]:
        """Packed pair key → edge id hash map, built on first scalar lookup.

        Kept off the snapshot hot path: building the Python dict costs O(E)
        interpreter work per snapshot, but only per-pair queries
        (``link_between``/``bandwidth_between``) need it — vectorised lookups
        go through ``searchsorted`` on the sorted key array instead.
        """
        self._finalize()
        if self._edge_of is None:
            keys = (
                np.minimum(self._node_a, self._node_b) * np.int64(self._node_count)
                + np.maximum(self._node_a, self._node_b)
            )
            self._edge_of = dict(zip(keys.tolist(), range(keys.size)))
        return self._edge_of

    def _build_adjacency(self) -> None:
        self._finalize()
        if self._adj_indptr is not None:
            return
        edge_count = self._node_a.size
        endpoints = np.concatenate([self._node_a, self._node_b])
        neighbors = np.concatenate([self._node_b, self._node_a])
        edge_ids = np.concatenate([np.arange(edge_count)] * 2)
        order = np.argsort(endpoints, kind="stable")
        degrees = np.bincount(endpoints, minlength=self._node_count)
        self._adj_indptr = np.concatenate([[0], np.cumsum(degrees)])
        self._adj_nodes = neighbors[order]
        self._adj_edges = edge_ids[order]

    # -- array views --------------------------------------------------------

    @property
    def node_a(self) -> np.ndarray:
        """First endpoints of all links (deduplicated, insertion order)."""
        self._finalize()
        return self._node_a

    @property
    def node_b(self) -> np.ndarray:
        """Second endpoints of all links."""
        self._finalize()
        return self._node_b

    @property
    def distances_km(self) -> np.ndarray:
        """Link distances [km]."""
        self._finalize()
        return self._distance_km

    @property
    def delays_ms(self) -> np.ndarray:
        """Link one-way delays [ms]."""
        self._finalize()
        return self._delay_ms

    @property
    def bandwidths_kbps(self) -> np.ndarray:
        """Link bandwidths [kbps]."""
        self._finalize()
        return self._bandwidth_kbps

    @property
    def link_type_codes(self) -> np.ndarray:
        """Link type codes (index into ``LinkType``: 0=ISL, 1=UPLINK, 2=HOST)."""
        self._finalize()
        return self._type_code

    def _link_at(self, edge_id: int) -> Link:
        return Link(
            node_a=int(self._node_a[edge_id]),
            node_b=int(self._node_b[edge_id]),
            distance_km=float(self._distance_km[edge_id]),
            delay_ms=float(self._delay_ms[edge_id]),
            bandwidth_kbps=float(self._bandwidth_kbps[edge_id]),
            link_type=_LINK_TYPE_BY_CODE[self._type_code[edge_id]],
        )

    @property
    def links(self) -> list[Link]:
        """All links as :class:`Link` objects (lazily built, cached view)."""
        if self._links_view is None:
            self._finalize()
            types = [_LINK_TYPE_BY_CODE[code] for code in self._type_code]
            self._links_view = [
                Link(int(a), int(b), float(dist), float(delay), float(bw), link_type)
                for a, b, dist, delay, bw, link_type in zip(
                    self._node_a,
                    self._node_b,
                    self._distance_km,
                    self._delay_ms,
                    self._bandwidth_kbps,
                    types,
                )
            ]
        return self._links_view

    # -- queries ------------------------------------------------------------

    def delay_matrix(self) -> sparse.csr_matrix:
        """Sparse symmetric matrix of one-way link delays [ms].

        Exact-zero delays are clamped to :data:`DELAY_EPSILON_MS` so that
        ``csgraph`` solvers (which treat explicit zeros as missing edges) keep
        co-located nodes reachable.  Duplicate node pairs have already been
        reduced to their minimum-delay link by :meth:`_finalize`.

        The sparsity structure (data permutation, column indices, row
        pointers) only depends on the edge set, so it is cached — and shared
        across structurally identical epochs via :meth:`from_edge_arrays` —
        leaving a pure delay-scatter per call.
        """
        self._finalize()
        n = self._node_count
        if self._node_a.size == 0:
            return sparse.csr_matrix((n, n))
        if self._csr_template is None:
            rows = np.concatenate([self._node_a, self._node_b])
            cols = np.concatenate([self._node_b, self._node_a])
            order = np.lexsort((cols, rows))
            indices = cols[order]
            indptr = np.concatenate(
                [[0], np.cumsum(np.bincount(rows, minlength=n))]
            ).astype(np.int64)
            self._csr_template = (order, indices, indptr)
        order, indices, indptr = self._csr_template
        delays = np.maximum(self._delay_ms, DELAY_EPSILON_MS)
        data = np.concatenate([delays, delays])[order]
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))

    def links_of(self, node: int) -> list[Link]:
        """All links incident to a node (empty for out-of-range nodes)."""
        if not 0 <= node < self._node_count:
            return []
        self._build_adjacency()
        start, stop = self._adj_indptr[node], self._adj_indptr[node + 1]
        return [self._link_at(int(edge)) for edge in self._adj_edges[start:stop]]

    def neighbors_of(self, node: int) -> np.ndarray:
        """Flat indices of all nodes adjacent to a node (empty if out of range)."""
        if not 0 <= node < self._node_count:
            return np.empty(0, dtype=np.int64)
        self._build_adjacency()
        start, stop = self._adj_indptr[node], self._adj_indptr[node + 1]
        return self._adj_nodes[start:stop]

    def _pair_key(self, node_a: int, node_b: int) -> int:
        return min(node_a, node_b) * self._node_count + max(node_a, node_b)

    def link_between(self, node_a: int, node_b: int) -> Optional[Link]:
        """The link between two nodes, or None if they are not adjacent (O(1))."""
        edge = self._edge_map().get(self._pair_key(node_a, node_b))
        return self._link_at(edge) if edge is not None else None

    def edge_ids_between(
        self, nodes_a: Sequence[int] | np.ndarray, nodes_b: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorised ``(a, b) → edge id`` lookup; ``-1`` where no link exists."""
        self._finalize()
        nodes_a = np.asarray(nodes_a, dtype=np.int64)
        nodes_b = np.asarray(nodes_b, dtype=np.int64)
        keys = (
            np.minimum(nodes_a, nodes_b) * np.int64(self._node_count)
            + np.maximum(nodes_a, nodes_b)
        )
        if self._sorted_keys.size == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        positions = np.searchsorted(self._sorted_keys, keys)
        positions = np.minimum(positions, self._sorted_keys.size - 1)
        found = self._sorted_keys[positions] == keys
        edges = np.where(found, self._sorted_edge_ids[positions], -1)
        return edges

    # -- shortest-path engine helpers ----------------------------------------

    @property
    def structure_token(self) -> np.ndarray:
        """Identity token of the edge structure.

        The sorted pair-key array is shared (by object, via
        :meth:`from_edge_arrays`) between structurally identical epochs,
        so an ``is`` comparison of this token tells a consumer whether a
        structure-keyed cache — CSR template, tree edge ids, membership
        index — is still valid without comparing arrays.
        """
        self._finalize()
        return self._sorted_keys

    def clamped_delays_ms(self) -> np.ndarray:
        """Per-edge solver weights: delays clamped to :data:`DELAY_EPSILON_MS`.

        Exactly the values scattered into :meth:`delay_matrix`, cached so
        the incremental path engine's tree re-summing and edge
        verification use bitwise the same weights as the cold solvers.
        """
        self._finalize()
        if self._clamped_delays is None:
            self._clamped_delays = np.maximum(self._delay_ms, DELAY_EPSILON_MS)
        return self._clamped_delays

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency as ``(indptr, neighbor_nodes, edge_ids)`` arrays.

        ``neighbor_nodes[indptr[v]:indptr[v + 1]]`` are the nodes adjacent
        to ``v`` and ``edge_ids`` the corresponding undirected edge ids —
        the traversal structure behind :meth:`links_of`, exposed for the
        path engine's localized re-relaxation.
        """
        self._build_adjacency()
        return self._adj_indptr, self._adj_nodes, self._adj_edges

    def carry_adjacency_from(self, diff: "TopologyDiff") -> None:
        """Derive this graph's CSR adjacency from the previous epoch's.

        Steady epochs share the previous graph's arrays outright (the
        edge ids align when the key layout is unchanged); structural
        epochs patch them — dropping the removed entries, splicing in the
        added ones via one ``searchsorted``/``insert`` pass — instead of
        re-sorting the full endpoint arrays.  No-op when this graph
        already built its adjacency, the previous epoch never built one,
        or the diff does not belong to this graph pair.

        Like the edge-id map and the cached adjacency weights, the
        patched adjacency is a *per-epoch* structure, not a per-table
        one: the engine's epoch-batched ``advance_all`` pays this call
        once and every carried table's kernel rows traverse the same
        arrays.
        """
        if self._adj_indptr is not None or diff.current is not self:
            return
        previous = diff.previous
        if (
            previous._adj_indptr is None
            or previous._node_count != self._node_count
        ):
            return
        self._finalize()
        previous._finalize()
        if previous._keys is self._keys or np.array_equal(
            previous._keys, self._keys
        ):
            self._adj_indptr = previous._adj_indptr
            self._adj_nodes = previous._adj_nodes
            self._adj_edges = previous._adj_edges
            return
        mapped = diff.edge_id_map()[previous._adj_edges]
        neighbors = previous._adj_nodes
        endpoints = np.repeat(
            np.arange(self._node_count, dtype=np.int64),
            np.diff(previous._adj_indptr),
        )
        if diff.links_removed.size:
            keep = mapped >= 0
            mapped = mapped[keep]
            neighbors = neighbors[keep]
            endpoints = endpoints[keep]
        added = diff.links_added
        degrees = np.bincount(endpoints, minlength=self._node_count)
        if added.size:
            add_endpoints = np.concatenate(
                [self._node_a[added], self._node_b[added]]
            )
            add_neighbors = np.concatenate(
                [self._node_b[added], self._node_a[added]]
            )
            add_ids = np.concatenate([added, added]).astype(mapped.dtype)
            order = np.argsort(add_endpoints, kind="stable")
            positions = np.searchsorted(endpoints, add_endpoints[order])
            # One mask-based splice filling both arrays, instead of two
            # ``np.insert`` passes over the full adjacency.
            new_slots = positions + np.arange(positions.size)
            keep_mask = np.ones(neighbors.size + positions.size, dtype=bool)
            keep_mask[new_slots] = False
            out_neighbors = np.empty(keep_mask.size, dtype=neighbors.dtype)
            out_ids = np.empty(keep_mask.size, dtype=mapped.dtype)
            out_neighbors[keep_mask] = neighbors
            out_neighbors[new_slots] = add_neighbors[order]
            out_ids[keep_mask] = mapped
            out_ids[new_slots] = add_ids[order]
            neighbors, mapped = out_neighbors, out_ids
            degrees += np.bincount(add_endpoints, minlength=self._node_count)
        self._adj_indptr = np.concatenate([[0], np.cumsum(degrees)])
        self._adj_nodes = neighbors
        self._adj_edges = mapped

    def adjacency_weights(self) -> np.ndarray:
        """Clamped solver weights gathered into CSR adjacency order.

        ``adjacency_weights()[p]`` is the weight of the edge at adjacency
        position ``p`` of :meth:`adjacency_arrays` — the per-position
        gather the regional re-solve kernel needs, done once per epoch
        graph instead of once per repaired table.
        """
        if self._adj_weights is None:
            self._build_adjacency()
            self._adj_weights = self.clamped_delays_ms()[self._adj_edges]
        return self._adj_weights

    def adjacency_lists(self) -> tuple[list, list, list]:
        """CSR adjacency as plain Python lists ``(indptr, nodes, weights)``.

        The path engine's Python-level heap repair iterates these per
        settled node; list indexing beats NumPy scalar indexing there by
        an order of magnitude.  Cached per graph so the conversion is
        paid once per epoch even when many tables (the main table plus
        the carried single-source extras) repair against the same graph.
        """
        if self._adj_lists is None:
            indptr, adj_nodes, _ = self.adjacency_arrays()
            self._adj_lists = (
                indptr.tolist(),
                adj_nodes.tolist(),
                self.adjacency_weights().tolist(),
            )
        return self._adj_lists

    def edge_membership(
        self, rows: np.ndarray, edge_ids: np.ndarray, row_count: int
    ) -> np.ndarray:
        """Reverse edge→membership index over per-row edge-id sets.

        Given parallel ``rows``/``edge_ids`` arrays (``-1`` entries are
        skipped), returns a ``(row_count, total_links)`` boolean matrix
        whose ``[r, e]`` entry says whether row ``r`` references edge
        ``e``.  The path engine builds this once per structure epoch from
        each source's shortest-path-tree edges, then answers "which
        sources' trees traverse these changed edges?" with one sliced
        ``any`` reduction.
        """
        self._finalize()
        membership = np.zeros((row_count, self._node_a.size), dtype=bool)
        valid = edge_ids >= 0
        membership[rows[valid], edge_ids[valid]] = True
        return membership

    # -- epoch diffs ---------------------------------------------------------

    def structurally_equal(self, other: "NetworkGraph") -> bool:
        """Whether both graphs contain exactly the same set of node pairs."""
        if self._node_count != other._node_count:
            return False
        self._finalize()
        other._finalize()
        return np.array_equal(self._sorted_keys, other._sorted_keys)

    def diff_from(self, previous: "NetworkGraph") -> TopologyDiff:
        """Diff this epoch's edge arrays against a previous epoch's.

        Emits a :class:`TopologyDiff` with ``links_added`` /
        ``links_removed`` / ``delay_changed`` / ``bandwidth_changed``
        edge-id index arrays (see the class docstring for which graph each
        array indexes into).  Attribute changes are detected by exact float
        comparison: the constellation calculation recomputes both epochs
        with bitwise-identical operations, so any genuine movement differs
        exactly.
        """
        if self._node_count != previous._node_count:
            raise ValueError("graphs must share the same node index layout")
        self._finalize()
        previous._finalize()
        empty = np.empty(0, dtype=np.int64)
        if np.array_equal(self._keys, previous._keys):
            # Steady state: identical edge sets in identical insertion order,
            # so edge ids line up 1:1 and no set intersection is needed.
            delay_changed = np.nonzero(self._delay_ms != previous._delay_ms)[0]
            bandwidth_changed = np.nonzero(
                self._bandwidth_kbps != previous._bandwidth_kbps
            )[0]
            return TopologyDiff(
                previous=previous,
                current=self,
                links_added=empty,
                links_removed=empty,
                delay_changed=delay_changed,
                bandwidth_changed=bandwidth_changed,
            )
        _, in_current, in_previous = np.intersect1d(
            self._sorted_keys,
            previous._sorted_keys,
            assume_unique=True,
            return_indices=True,
        )
        common_current = self._sorted_edge_ids[in_current]
        common_previous = previous._sorted_edge_ids[in_previous]
        added_mask = np.ones(self._node_a.size, dtype=bool)
        added_mask[common_current] = False
        removed_mask = np.ones(previous._node_a.size, dtype=bool)
        removed_mask[common_previous] = False
        delay_changed = common_current[
            self._delay_ms[common_current] != previous._delay_ms[common_previous]
        ]
        bandwidth_changed = common_current[
            self._bandwidth_kbps[common_current]
            != previous._bandwidth_kbps[common_previous]
        ]
        return TopologyDiff(
            previous=previous,
            current=self,
            links_added=np.nonzero(added_mask)[0],
            links_removed=np.nonzero(removed_mask)[0],
            delay_changed=np.sort(delay_changed),
            bandwidth_changed=np.sort(bandwidth_changed),
        )

    def degree(self, node: int) -> int:
        """Number of links incident to a node (0 for out-of-range nodes)."""
        if not 0 <= node < self._node_count:
            return 0
        self._build_adjacency()
        return int(self._adj_indptr[node + 1] - self._adj_indptr[node])

    def total_links(self) -> int:
        """Number of undirected links in the graph (after deduplication)."""
        self._finalize()
        return int(self._node_a.size)

    def bandwidth_between(self, node_a: int, node_b: int) -> float:
        """Bandwidth of the direct link between two nodes [kbps], 0 if absent."""
        edge = self._edge_map().get(self._pair_key(node_a, node_b))
        return float(self._bandwidth_kbps[edge]) if edge is not None else 0.0

    def as_networkx(self):
        """Export to a networkx graph (used by the animation/export component)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._node_count))
        for link in self.links:
            graph.add_edge(
                link.node_a,
                link.node_b,
                delay_ms=link.delay_ms,
                distance_km=link.distance_km,
                bandwidth_kbps=link.bandwidth_kbps,
                link_type=link.link_type.value,
            )
        return graph
