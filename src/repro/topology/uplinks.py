"""Ground-station uplink selection.

A ground station can communicate with every satellite currently above its
configured minimum elevation angle (§3.1).  Celestial configures network
links to all of them; applications (such as the §4 tracking service) then
decide which satellite server to use.

:func:`visible_satellites` is the shared, fully vectorised hot-path helper:
the constellation calculation calls it once per ground-station/shell pair
per snapshot and bulk-appends the resulting index/slant-range arrays to the
array-backed :class:`~repro.topology.graph.NetworkGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants
from repro.orbits.visibility import elevation_angle_deg, slant_range_km


def visible_satellites(
    ground_position: np.ndarray,
    satellite_positions: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and slant ranges [km] of satellites visible from a ground point.

    Both positions must be in the same frame at the same instant; the
    satellite positions array has shape (N, 3).
    """
    satellite_positions = np.asarray(satellite_positions, dtype=float)
    elevations = elevation_angle_deg(ground_position, satellite_positions)
    visible = np.nonzero(elevations >= min_elevation_deg)[0]
    distances = slant_range_km(ground_position, satellite_positions[visible])
    return visible, np.atleast_1d(distances)


def closest_visible_satellite(
    ground_position: np.ndarray,
    satellite_positions: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> tuple[int, float] | None:
    """The nearest visible satellite as (index, distance km), or None."""
    visible, distances = visible_satellites(
        ground_position, satellite_positions, min_elevation_deg
    )
    if visible.size == 0:
        return None
    best = int(np.argmin(distances))
    return int(visible[best]), float(distances[best])
