"""Ground-station uplink selection.

A ground station can communicate with every satellite currently above its
configured minimum elevation angle (§3.1).  Celestial configures network
links to all of them; applications (such as the §4 tracking service) then
decide which satellite server to use.

:func:`visible_satellites` is the shared, fully vectorised hot-path helper:
the constellation calculation calls it once per ground-station/shell pair
per snapshot and bulk-appends the resulting index/slant-range arrays to the
array-backed :class:`~repro.topology.graph.NetworkGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.orbits import constants
from repro.orbits.visibility import (
    elevation_angle_deg,
    elevation_angle_matrix_deg,
    slant_range_km,
)


def visible_satellites(
    ground_position: np.ndarray,
    satellite_positions: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and slant ranges [km] of satellites visible from a ground point.

    Both positions must be in the same frame at the same instant; the
    satellite positions array has shape (N, 3).
    """
    satellite_positions = np.asarray(satellite_positions, dtype=float)
    elevations = elevation_angle_deg(ground_position, satellite_positions)
    visible = np.nonzero(elevations >= min_elevation_deg)[0]
    distances = slant_range_km(ground_position, satellite_positions[visible])
    return visible, np.atleast_1d(distances)


def visible_satellites_batch(
    ground_positions: np.ndarray,
    satellite_positions: np.ndarray,
    min_elevations_deg: np.ndarray | float = constants.DEFAULT_MIN_ELEVATION_DEG,
    elevations_deg: np.ndarray | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-ground-station visible satellites from one stacked matrix operation.

    ``ground_positions`` has shape (G, 3) and ``min_elevations_deg`` is a
    scalar or a (G,) array of per-station thresholds.  The elevation angles of
    all G×N pairs are computed in a single batched operation
    (:func:`~repro.orbits.visibility.elevation_angle_matrix_deg`) instead of
    one call per ground station; the result list holds, per ground station,
    the same ``(visible indices, slant ranges km)`` pair — bitwise identical
    values — that :func:`visible_satellites` would return.

    The constellation snapshot path also needs the raw elevation matrix (it
    seeds the differential-update visibility bounds), so a caller that
    already holds it can pass it via ``elevations_deg`` and only the
    per-station selection runs.
    """
    ground_positions = np.asarray(ground_positions, dtype=float).reshape(-1, 3)
    satellite_positions = np.asarray(satellite_positions, dtype=float)
    thresholds = np.broadcast_to(
        np.asarray(min_elevations_deg, dtype=float), (ground_positions.shape[0],)
    )
    if elevations_deg is None:
        elevations_deg = elevation_angle_matrix_deg(ground_positions, satellite_positions)
    results = []
    for row, threshold in enumerate(thresholds):
        visible = np.nonzero(elevations_deg[row] >= threshold)[0]
        distances = slant_range_km(ground_positions[row], satellite_positions[visible])
        results.append((visible, np.atleast_1d(distances)))
    return results


def closest_visible_satellite(
    ground_position: np.ndarray,
    satellite_positions: np.ndarray,
    min_elevation_deg: float = constants.DEFAULT_MIN_ELEVATION_DEG,
) -> tuple[int, float] | None:
    """The nearest visible satellite as (index, distance km), or None."""
    visible, distances = visible_satellites(
        ground_position, satellite_positions, min_elevation_deg
    )
    if visible.size == 0:
        return None
    best = int(np.argmin(distances))
    return int(visible[best]), float(distances[best])
