"""Batched multi-source bounded Dijkstra kernels for the path engine.

The incremental :class:`~repro.topology.paths.PathEngine` repairs a
shortest-path table by carrying the previous distances forward,
invalidating the severed subtrees to ``inf`` and seeding the violated
edges (the finite→``inf`` boundary plus added/decreased links).  Rows
whose violations exceed the Python re-relaxation budget used to fall
back to one
``csgraph.dijkstra`` row per source — a *full* cold solve of those rows,
which made churn epochs (handovers, ISL flicker) as expensive as no reuse
at all.  This module replaces that fallback with a **bounded regional
re-solve**: all handed-off rows of a table are repaired in one batched
call that only ever touches the affected region.

Algorithm
---------

Inputs are the CSR adjacency of the epoch graph (``indptr``,
``adj_nodes``, ``adj_weights`` — weights pre-gathered into adjacency
order), the carried distance rows flattened to one ``(rows * n,)``
array, the matching flat predecessor array, and the violated directed
edges found by the engine's verification pass (``parent → child`` with
the edge weight), expressed in flat node coordinates ``row * n + node``.

Conceptually the kernel runs Dijkstra from a *virtual source* connected
to every seed child at its candidate distance ``dist[parent] + w``, over
the disjoint union of one graph copy per affected row.  Two properties
bound the work:

* **Upper-bound pruning** — every entry of the carried ``dist`` array
  is a valid upper bound (it is the float sum of an existing path, or
  ``+inf`` where the old path died), so a relaxation is only accepted
  when it *strictly improves* the current value.  Nodes whose old
  distance already beats every candidate path from the seeds are never
  touched; the traversal therefore stays inside the re-hung region
  instead of sweeping all ``rows × n`` states.
* **Batching** — flat ``row * n + node`` indexing makes the per-row
  subproblems independent cells of one array, so a single call (one heap,
  or one frontier sweep) repairs every handed-off source of the table.

Correctness / parity contract
-----------------------------

The kernel's distances are **byte-identical** to a cold
``csgraph.dijkstra`` solve, by the same monotone-IEEE-754 argument as the
engine's repair path (see the ``paths.py`` module docstring): every value
written is the left-to-right float sum of the hop weights along an actual
path, IEEE-754 addition is monotone, and the relaxation runs until no
edge can improve any value.  A state where ``dist[child] <=
dist[parent] + w`` holds for every edge and every finite entry is a path
sum is the *unique* fixed point — the minimum over all paths of the float
path sum — regardless of the order in which relaxations were applied.
Seeding with exactly the violated edges suffices to reach it: if some
node ended above its true distance, walking its true shortest path from
the source gives a first edge whose relaxation would still improve it;
that edge was either violated at seed time (and therefore seeded) or
became violated when its tail improved (and its tail's settlement
relaxed it) — a contradiction either way.

Because relaxation *order* is free, the module ships three
interchangeable implementations behind :func:`bounded_regional_resolve`:

* ``"numba"`` — :func:`_resolve_heap` compiled with
  ``numba.njit(cache=True)``: a flat-array binary heap (two parallel
  ``float64``/``int64`` arrays with inline sift-up/sift-down and lazy
  deletion), classic Dijkstra order.  Available with the ``[fast]``
  extra; the import is guarded so the package works without it.
* ``"numpy"`` — :func:`_resolve_frontier`: a vectorised label-correcting
  sweep.  Each round expands the whole improvement frontier with array
  gathers (``np.repeat`` over CSR degree counts) and commits the round's
  best candidates with ``np.minimum.at``.  Rounds are bounded by the hop
  radius of the affected region, so churn epochs cost a few dozen
  NumPy calls instead of a Python-level loop per settled node.  This is
  the default fallback when Numba is absent.
* ``"python"`` — the *same source* as the Numba leg, interpreted.  Kept
  as the reference implementation the property tests compare against on
  small graphs (and the body Numba compiles, so the compiled leg cannot
  drift from it).

All three reach the same fixed point, hence identical distance bytes.
Predecessors may differ between implementations only where two parents
offer bitwise-equal candidate distances (first writer wins, and the
write order is implementation-defined); reconstructed paths always exist
and re-sum exactly to the reported distance, which is the engine-wide
predecessor contract.

Stacked multi-table rows
------------------------

Nothing in the flat ``row * n + node`` indexing requires the rows to
belong to one table: a seed's parent and child share a row by
construction, every adjacency expansion stays inside ``row * n ..
(row + 1) * n``, and no relaxation ever reads another row's state.  The
engine's epoch-batched :meth:`~repro.topology.paths.PathEngine.
advance_all` exploits exactly this — it stacks the violated rows of
*every* carried table into one kernel invocation whose row axis spans
tables.  The byte-identity argument survives stacking unchanged: each
row relaxes to its own unique fixed point regardless of which other
rows share the call, so a stacked invocation equals the per-table
invocations bit for bit in distances (all three backends).  Within a
row even the relaxation *order* is preserved — heap comparisons break
distance ties on the flat index, whose per-row offsets are unaffected
by the stacking base, and the frontier sweep's sorted commits keep
per-row relative order — so predecessor bytes match the per-table call
too; against a *cold* solve they may still differ at exact ties, as
above.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised only when the [fast] extra is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAVE_NUMBA = False


def _resolve_heap(
    indptr: np.ndarray,
    adj_nodes: np.ndarray,
    adj_weights: np.ndarray,
    n: int,
    dist: np.ndarray,
    pred: np.ndarray,
    seed_parent_flat: np.ndarray,
    seed_child_flat: np.ndarray,
    seed_weight: np.ndarray,
) -> int:
    """Flat-array binary-heap bounded Dijkstra (Numba-compilable body).

    ``dist`` (float64) and ``pred`` (int32) are flat ``rows * n`` arrays,
    mutated in place; ``pred`` stores parent *node* ids (0..n-1).
    Returns the number of settled heap entries.
    """
    capacity = 64 + 2 * seed_child_flat.size
    heap_dist = np.empty(capacity, np.float64)
    heap_node = np.empty(capacity, np.int64)
    size = 0
    # Seed: apply the violated edges in order; duplicates targeting the
    # same child keep the strictly-best value (first writer on ties).
    for i in range(seed_child_flat.size):
        parent = seed_parent_flat[i]
        child = seed_child_flat[i]
        candidate = dist[parent] + seed_weight[i]
        if candidate < dist[child]:
            dist[child] = candidate
            pred[child] = parent - (parent // n) * n
            if size == capacity:
                capacity *= 2
                new_dist = np.empty(capacity, np.float64)
                new_node = np.empty(capacity, np.int64)
                new_dist[:size] = heap_dist[:size]
                new_node[:size] = heap_node[:size]
                heap_dist = new_dist
                heap_node = new_node
            # sift up
            pos = size
            size += 1
            while pos > 0:
                up = (pos - 1) // 2
                if heap_dist[up] <= candidate:
                    break
                heap_dist[pos] = heap_dist[up]
                heap_node[pos] = heap_node[up]
                pos = up
            heap_dist[pos] = candidate
            heap_node[pos] = child
    settles = 0
    while size > 0:
        top_dist = heap_dist[0]
        top_node = heap_node[0]
        # pop: move the last leaf to the root and sift down
        size -= 1
        last_dist = heap_dist[size]
        last_node = heap_node[size]
        pos = 0
        while True:
            left = 2 * pos + 1
            if left >= size:
                break
            right = left + 1
            child_pos = left
            if right < size and heap_dist[right] < heap_dist[left]:
                child_pos = right
            if heap_dist[child_pos] >= last_dist:
                break
            heap_dist[pos] = heap_dist[child_pos]
            heap_node[pos] = heap_node[child_pos]
            pos = child_pos
        heap_dist[pos] = last_dist
        heap_node[pos] = last_node
        if top_dist > dist[top_node]:
            continue  # lazy deletion: the node improved after this push
        settles += 1
        base = top_node - top_node % n
        node = top_node - base
        for position in range(indptr[node], indptr[node + 1]):
            candidate = top_dist + adj_weights[position]
            neighbor = base + adj_nodes[position]
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                pred[neighbor] = node
                if size == capacity:
                    capacity *= 2
                    new_dist = np.empty(capacity, np.float64)
                    new_node = np.empty(capacity, np.int64)
                    new_dist[:size] = heap_dist[:size]
                    new_node[:size] = heap_node[:size]
                    heap_dist = new_dist
                    heap_node = new_node
                pos = size
                size += 1
                while pos > 0:
                    up = (pos - 1) // 2
                    if heap_dist[up] <= candidate:
                        break
                    heap_dist[pos] = heap_dist[up]
                    heap_node[pos] = heap_node[up]
                    pos = up
                heap_dist[pos] = candidate
                heap_node[pos] = neighbor
    return settles


def _resolve_frontier(
    indptr: np.ndarray,
    adj_nodes: np.ndarray,
    adj_weights: np.ndarray,
    n: int,
    dist: np.ndarray,
    pred: np.ndarray,
    seed_parent_flat: np.ndarray,
    seed_child_flat: np.ndarray,
    seed_weight: np.ndarray,
) -> int:
    """Vectorised frontier label-correcting bounded re-solve (pure NumPy).

    Same in/out contract as :func:`_resolve_heap`; relaxation order is
    breadth-of-frontier instead of heap order, which reaches the same
    fixed point (see the module docstring).  Returns the total number of
    frontier slots processed (the settle-count analogue).
    """
    # Deduplicating a round's improved children via a reusable boolean
    # scratch over the flat state space is one C scan per round, an order
    # of magnitude cheaper than the ``np.unique`` argsort it replaces.
    # Predecessor writes use duplicate-index fancy assignment: the last
    # writer wins, and every writer passed the ``winners`` filter, so all
    # of them offer the bitwise-minimal candidate (the pred contract
    # allows any such parent).
    scratch = np.zeros(dist.size, np.bool_)
    indptr_tail = indptr[1:]

    # Seed round: commit the best candidate per child, remember winners.
    candidates = dist[seed_parent_flat] + seed_weight
    improved = np.flatnonzero(candidates < dist[seed_child_flat])
    frontier = np.empty(0, np.int64)
    if improved.size:
        children = seed_child_flat[improved]
        candidates = candidates[improved]
        parents = seed_parent_flat[improved]
        np.minimum.at(dist, children, candidates)
        winners = candidates == dist[children]
        won = children[winners]
        pred[won] = (parents[winners] % n).astype(pred.dtype)
        scratch[won] = True
        frontier = np.flatnonzero(scratch)
        scratch[frontier] = False
    settles = 0
    while frontier.size:
        settles += frontier.size
        nodes = frontier % n
        starts = indptr[nodes]
        counts = indptr_tail[nodes] - starts
        total = int(counts.sum())
        if total == 0:
            break
        positions = (
            np.repeat(starts - (np.cumsum(counts) - counts), counts)
            + np.arange(total)
        )
        targets = np.repeat(frontier - nodes, counts) + adj_nodes[positions]
        candidates = np.repeat(dist[frontier], counts) + adj_weights[positions]
        improved = np.flatnonzero(candidates < dist[targets])
        if improved.size == 0:
            break
        targets = targets[improved]
        candidates = candidates[improved]
        np.minimum.at(dist, targets, candidates)
        winners = candidates == dist[targets]
        won = targets[winners]
        pred[won] = np.repeat(nodes, counts)[improved[winners]].astype(pred.dtype)
        scratch[won] = True
        frontier = np.flatnonzero(scratch)
        scratch[frontier] = False
    return settles


_numba_resolve = None
if HAVE_NUMBA:  # pragma: no cover - exercised only with the [fast] extra
    _numba_resolve = numba.njit(cache=True)(_resolve_heap)

#: Available kernel backends, best first.  ``"numba"`` appears only when
#: the optional dependency is installed.
KERNEL_BACKENDS: tuple[str, ...] = (
    ("numba", "numpy", "python") if HAVE_NUMBA else ("numpy", "python")
)

#: Backend picked by ``backend="auto"``.
DEFAULT_BACKEND: str = KERNEL_BACKENDS[0]


def resolve_backend(backend: Optional[str]) -> Optional[str]:
    """Normalise a backend request (``None``/``"off"`` disable the kernel)."""
    if backend is None or backend == "off":
        return None
    if backend == "auto":
        return DEFAULT_BACKEND
    if backend not in KERNEL_BACKENDS:
        available = ", ".join(KERNEL_BACKENDS)
        raise ValueError(
            f"unknown kernel backend {backend!r} (available: {available}, "
            "auto, off)"
        )
    return backend


def bounded_regional_resolve(
    indptr: np.ndarray,
    adj_nodes: np.ndarray,
    adj_weights: np.ndarray,
    n: int,
    dist: np.ndarray,
    pred: np.ndarray,
    seed_parent_flat: np.ndarray,
    seed_child_flat: np.ndarray,
    seed_weight: np.ndarray,
    backend: str = "auto",
) -> int:
    """Batched bounded re-solve of the flat rows in ``dist``/``pred``.

    Dispatches to the requested backend (see the module docstring for the
    parity contract) and returns its settle count.  ``dist`` and ``pred``
    are mutated in place.
    """
    backend = resolve_backend(backend)
    if backend is None:
        raise ValueError("the kernel is disabled (backend None/'off')")
    if backend == "numba":
        return int(
            _numba_resolve(
                indptr.astype(np.int64, copy=False),
                adj_nodes.astype(np.int64, copy=False),
                adj_weights,
                n,
                dist,
                pred,
                seed_parent_flat,
                seed_child_flat,
                seed_weight,
            )
        )
    if backend == "numpy":
        return _resolve_frontier(
            indptr, adj_nodes, adj_weights, n, dist, pred,
            seed_parent_flat, seed_child_flat, seed_weight,
        )
    return _resolve_heap(
        indptr, adj_nodes, adj_weights, n, dist, pred,
        seed_parent_flat, seed_child_flat, seed_weight,
    )
