"""Shortest network paths and end-to-end latency within the constellation.

Celestial computes shortest paths with efficient implementations of
Dijkstra's algorithm and the Floyd-Warshall algorithm (§3.1).  Both are
available here, backed by ``scipy.sparse.csgraph``: Dijkstra from a set of
source nodes (the default, scales to Starlink-sized constellations), and
Floyd-Warshall for dense all-pairs computation on smaller topologies.

Both solvers treat explicit zeros in the weight matrix as *absent* edges
(the dense Floyd-Warshall input drops them outright in ``toarray()``), so
:meth:`repro.topology.graph.NetworkGraph.delay_matrix` clamps zero-delay
links to ``DELAY_EPSILON_MS``; reported delays may therefore exceed the true
sum of hop delays by at most one nanosecond per hop.

Incremental engine: none / repair / rebuild
-------------------------------------------

Consecutive constellation epochs share almost their entire shortest-path
structure, so rerunning a cold solve every epoch wastes the work the
differential pipeline already did.  :class:`PathEngine` advances a solved
:class:`ShortestPaths` table from one epoch to the next, dispatching on the
epoch's :class:`~repro.topology.graph.TopologyDiff`:

* **none** — the diff is empty (or touches only bandwidths): the previous
  trees are returned verbatim, rebound to the new graph.  Zero solver work.
* **repair** — delays moved and/or a few links appeared or disappeared:
  the previous predecessor forest is *re-summed* with the new weights (one
  level-ordered vectorised pass per tree depth), then every edge is checked
  against the Bellman optimality condition ``d[v] <= d[u] + w(u, v)``.
  Sources without violations are done — their re-summed rows are exact.
  Violated rows are repaired by a Ramalingam–Reps-style re-relaxation
  restricted to the affected subtrees (a heap-based Dijkstra seeded from
  the violated edges); a row falls back to a batched ``csgraph.dijkstra``
  when the touched fraction exceeds ``repair_threshold`` or a violation's
  finite undercut reaches ``solver_handoff_gain_ms`` (a new/disappeared
  link re-hanging a whole region — C-solver territory).
* **rebuild** — incompatible tables (different sources/method, foreign
  graph) degrade to a cold solve.

For delay-only diffs the engine first consults a reverse edge→tree
membership index (built once per structure epoch from the CSR edge-id
arrays, see :meth:`~repro.topology.graph.NetworkGraph.edge_membership`):
sources whose trees traverse no changed edge keep their re-summed rows
bitwise unchanged and only need the cheap decreased-edge check.

An adaptive churn guard watches the dispatch outcome: when most of a
table's rows were handed to the C solver anyway, the constellation is in
a regime of genuine wholesale route churn (every satellite moves every
epoch; handovers re-hang large regions) where the scan/verify machinery
is pure overhead — the table's next few epochs cold-solve directly, and
the repair path is re-probed afterwards.  The engine therefore degrades
to cold-solve cost plus noise in the worst case, while quiet and
localized workloads (bounded scenarios, fault injection, bandwidth-only
updates, replays) keep the full reuse benefit.

Invariants
~~~~~~~~~~

The engine's output is **byte-identical in distances and reachability** to
a cold solve on the same graph.  This holds exactly — not approximately —
because IEEE-754 addition is monotone: a distance produced by Dijkstra is
the minimum over all paths of the left-to-right floating-point sum of the
(epsilon-clamped) hop delays.  The re-summed tree rows are such path sums;
when no edge violates ``d[v] <= d[u] + w`` the standard optimality proof
carries over verbatim to floats, so the row equals the cold solve bit for
bit.  The heap repair relaxes to the same fixed point.  Predecessor trees
may differ from a cold solve only between equal-delay alternatives.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, fields
from typing import Iterable, Literal, Optional, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.topology.graph import DELAY_EPSILON_MS, NetworkGraph, TopologyDiff

#: Sentinel used by ``scipy.sparse.csgraph`` for "no predecessor" (the
#: source itself and unreachable nodes).  The engine preserves it.
NO_PREDECESSOR = -9999


@dataclass(frozen=True)
class PathResult:
    """A shortest path between two nodes with its end-to-end delay."""

    source: int
    target: int
    delay_ms: float
    hops: tuple[int, ...]

    @property
    def reachable(self) -> bool:
        """Whether a path exists."""
        return np.isfinite(self.delay_ms)

    @property
    def hop_count(self) -> int:
        """Number of links traversed (0 if unreachable or source == target)."""
        return max(0, len(self.hops) - 1)

    @property
    def rtt_ms(self) -> float:
        """Round-trip time assuming the symmetric path is used both ways."""
        return 2.0 * self.delay_ms


class _TreeForest:
    """Level-ordered view of a table's predecessor forest.

    Nodes of all sources are flattened (``row * n + node``) and sorted by
    tree depth, so one vectorised gather per depth level re-sums every
    tree with new weights.  The forest depends only on the predecessor
    arrays — not on the weights — and is therefore reused across epochs
    until a repair or solve rewrites a predecessor row.
    """

    def __init__(self, predecessors: np.ndarray, sources: Sequence[int], n: int):
        source_count = predecessors.shape[0]
        tree_rows, tree_cols = np.nonzero(predecessors >= 0)
        parents = predecessors[tree_rows, tree_cols].astype(np.int64)
        node_flat = tree_rows * n + tree_cols
        parent_flat = tree_rows * n + parents
        # Depth via pointer doubling: `jump` starts at the parent (terminal
        # nodes — roots and unreachables — point at themselves) and squares
        # each round, so `depth` converges in O(log max_depth) full-array
        # gathers instead of one pass per level.
        jump = np.arange(source_count * n, dtype=np.int64)
        jump[node_flat] = parent_flat
        depth = np.zeros(source_count * n, dtype=np.int32)
        depth[node_flat] = 1
        for _ in range(64):
            advanced = jump[jump]
            if np.array_equal(advanced, jump):
                break
            depth += depth[jump]
            jump = advanced
        else:  # pragma: no cover - defensive (cycle)
            raise RuntimeError("predecessor arrays contain a cycle")
        order = np.argsort(depth[node_flat], kind="stable")
        self.ordered_nodes = node_flat[order]
        self.ordered_parents = parent_flat[order]
        sorted_depth = depth[self.ordered_nodes]
        max_depth = int(sorted_depth[-1]) if sorted_depth.size else 0
        # bounds[d - 1] is the first position of depth d; the trailing
        # entry (depth max + 1) closes the deepest level at the end.
        bounds = np.searchsorted(sorted_depth, np.arange(1, max_depth + 2))
        self.level_slices = [
            (int(bounds[level]), int(bounds[level + 1]))
            for level in range(max_depth)
        ]
        self.root_flat = np.arange(source_count, dtype=np.int64) * n + np.asarray(
            sources, dtype=np.int64
        )


class _PathCaches:
    """Per-table engine caches, shared between rebound epoch views.

    ``forest`` is keyed implicitly to the table's predecessor arrays (the
    engine drops it whenever it rewrites a row); ``tree_edge_matrix``
    holds, per ``(source row, node)``, the edge id of the node's tree edge
    ``(pred, node)`` in the graph identified by ``edges_token`` (``-1``
    for roots and unreachable nodes).  Being node-indexed, the matrix
    survives predecessor rewrites through cheap point patches and
    structural epochs through one ``edge_id_map`` gather.  The edge→tree
    membership index is derived from it on demand.
    """

    __slots__ = ("forest", "edges_token", "tree_edge_matrix", "membership")

    def __init__(self):
        self.forest: Optional[_TreeForest] = None
        self.edges_token: Optional[object] = None
        self.tree_edge_matrix: Optional[np.ndarray] = None
        self.membership: Optional[np.ndarray] = None


class ShortestPaths:
    """Shortest paths from a set of source nodes over a network snapshot.

    Constructing an instance runs a cold solve; :class:`PathEngine`
    produces equivalent instances incrementally via
    :meth:`PathEngine.advance` and keeps :class:`ShortestPaths` as the
    query façade, so consumers are oblivious to how a table was computed.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        sources: Optional[Sequence[int]] = None,
        method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
    ):
        self.graph = graph
        matrix = graph.delay_matrix()
        node_count = matrix.shape[0]
        if sources is None:
            sources = list(range(node_count))
        self.sources = list(sources)
        if not self.sources:
            raise ValueError("at least one source node is required")
        for source in self.sources:
            if not 0 <= source < node_count:
                raise ValueError(f"source {source} out of range")
        self.method = method
        if method == "dijkstra":
            distances, predecessors = csgraph.dijkstra(
                matrix, directed=False, indices=self.sources, return_predecessors=True
            )
        elif method == "floyd-warshall":
            # The matrix is passed in sparse form: scipy's dense conversion
            # nulls out weights below ~1e-8 (not just exact zeros), which
            # would drop the epsilon-clamped zero-delay links; sparse input
            # keeps every stored entry as an edge.
            all_distances, all_predecessors = csgraph.floyd_warshall(
                matrix, directed=False, return_predecessors=True
            )
            distances = all_distances[self.sources]
            predecessors = all_predecessors[self.sources]
        else:
            raise ValueError(f"unknown shortest path method: {method!r}")
        self._row_of = {source: row for row, source in enumerate(self.sources)}
        self._distances = np.atleast_2d(distances)
        self._predecessors = np.atleast_2d(predecessors)
        self._caches = _PathCaches()

    @classmethod
    def _from_arrays(
        cls,
        graph: NetworkGraph,
        sources: Sequence[int],
        method: str,
        distances: np.ndarray,
        predecessors: np.ndarray,
        caches: Optional[_PathCaches] = None,
    ) -> "ShortestPaths":
        """Build a table around already-solved arrays (engine fast path)."""
        table = cls.__new__(cls)
        table.graph = graph
        table.sources = list(sources)
        table.method = method
        table._row_of = {source: row for row, source in enumerate(table.sources)}
        table._distances = np.atleast_2d(distances)
        table._predecessors = np.atleast_2d(predecessors)
        table._caches = caches if caches is not None else _PathCaches()
        return table

    def _rebind(self, graph: NetworkGraph) -> "ShortestPaths":
        """A view of this table over a new (identically weighted) graph.

        Arrays and engine caches are shared, never copied; tables are
        treated as immutable once published.
        """
        return ShortestPaths._from_arrays(
            graph, self.sources, self.method, self._distances, self._predecessors,
            caches=self._caches,
        )

    def has_source(self, node: int) -> bool:
        """Whether shortest paths were computed from this node."""
        return node in self._row_of

    def delay_ms(self, source: int, target: int) -> float:
        """One-way shortest-path delay [ms]; ``inf`` if unreachable."""
        row = self._row_for(source)
        return float(self._distances[row, target])

    def rtt_ms(self, source: int, target: int) -> float:
        """Round-trip delay [ms] over the symmetric shortest path."""
        return 2.0 * self.delay_ms(source, target)

    def reachable(self, source: int, target: int) -> bool:
        """Whether the target can be reached from the source."""
        return np.isfinite(self.delay_ms(source, target))

    def path(self, source: int, target: int) -> PathResult:
        """Full path reconstruction between a source and a target node."""
        row = self._row_for(source)
        delay = float(self._distances[row, target])
        if not np.isfinite(delay):
            return PathResult(source, target, float("inf"), ())
        if source == target:
            return PathResult(source, target, 0.0, (source,))
        hops = [target]
        current = target
        predecessors = self._predecessors[row]
        while current != source:
            current = int(predecessors[current])
            if current < 0:
                return PathResult(source, target, float("inf"), ())
            hops.append(current)
        hops.reverse()
        return PathResult(source, target, delay, tuple(hops))

    def delays_from(self, source: int) -> np.ndarray:
        """Vector of one-way delays [ms] from a source to every node."""
        return self._distances[self._row_for(source)].copy()

    def nearest(self, source: int, candidates: Iterable[int]) -> Optional[int]:
        """The candidate node with the lowest delay from ``source``, or None."""
        candidates = np.fromiter(candidates, dtype=np.int64)
        if candidates.size == 0:
            return None
        delays = self._distances[self._row_for(source)][candidates]
        best = int(np.argmin(delays))
        if not np.isfinite(delays[best]):
            return None
        return int(candidates[best])

    def _row_for(self, source: int) -> int:
        if source not in self._row_of:
            raise KeyError(f"node {source} was not used as a source")
        return self._row_of[source]

    # -- engine cache plumbing ------------------------------------------

    def _ensure_forest(self) -> _TreeForest:
        if self._caches.forest is None:
            self._caches.forest = _TreeForest(
                self._predecessors, self.sources, len(self.graph.index)
            )
        return self._caches.forest

    def _tree_matrix_for(
        self, graph: NetworkGraph, diff: Optional[TopologyDiff] = None
    ) -> np.ndarray:
        """Node-indexed tree-edge-id matrix in ``graph`` (-1 where absent).

        Cached per structure epoch: consecutive steady-state graphs share
        their sorted-key array object, so no lookup runs while the edge
        set is unchanged.  Across a structural epoch the cached ids are
        carried over through the diff's
        :meth:`~repro.topology.graph.TopologyDiff.edge_id_map` (one
        gather); only a cold cache pays the full pair lookup.
        """
        token = graph.structure_token
        cache = self._caches
        if cache.tree_edge_matrix is None or cache.edges_token is not token:
            matrix = None
            if (
                cache.tree_edge_matrix is not None
                and diff is not None
                and cache.edges_token is diff.previous.structure_token
            ):
                id_map = diff.edge_id_map()
                old = cache.tree_edge_matrix
                matrix = np.where(old >= 0, id_map[np.maximum(old, 0)], -1)
            if matrix is None:
                predecessors = self._predecessors
                matrix = np.full(predecessors.shape, -1, dtype=np.int64)
                rows, cols = np.nonzero(predecessors >= 0)
                matrix[rows, cols] = graph.edge_ids_between(
                    predecessors[rows, cols].astype(np.int64), cols
                )
            cache.tree_edge_matrix = matrix
            cache.edges_token = token
            cache.membership = None
        return cache.tree_edge_matrix

    def _membership_for(
        self, graph: NetworkGraph, diff: Optional[TopologyDiff] = None
    ) -> np.ndarray:
        """Reverse edge→tree membership index (``(S, E)`` bool)."""
        if self._caches.membership is None:
            matrix = self._tree_matrix_for(graph, diff)
            rows, cols = np.nonzero(matrix >= 0)
            self._caches.membership = graph.edge_membership(
                rows, matrix[rows, cols], matrix.shape[0]
            )
        return self._caches.membership


@dataclass
class PathEngineStats:
    """Counters describing how the engine advanced its tables.

    ``solver_calls`` counts ``csgraph`` invocations (the benchmark's
    "zero Dijkstra solves on empty diffs" assertion); the ``rows_*``
    counters attribute every published row to how it was produced.
    """

    cold_solves: int = 0
    empty_reuses: int = 0
    repaired_epochs: int = 0
    structural_epochs: int = 0
    bypassed_epochs: int = 0
    solver_calls: int = 0
    rows_solved: int = 0
    rows_reused: int = 0
    rows_repaired: int = 0
    heap_settles: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy (JSON-serialisable, used by the benchmarks)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PathEngine:
    """Incremental shortest-path engine over consecutive epoch graphs.

    One engine serves many tables (the main ground-station table plus any
    lazily created single-source satellite tables): :meth:`solve` runs a
    counted cold solve, :meth:`advance` carries a table across a
    :class:`~repro.topology.graph.TopologyDiff` using the none / repair /
    rebuild dispatch described in the module docstring.  Tables are
    immutable; the engine never mutates a published epoch's arrays, so
    keyframe states held by the database stay valid and any retained
    state can seed a replay.
    """

    def __init__(
        self,
        sources: Optional[Sequence[int]] = None,
        method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
        repair_threshold: float = 0.25,
        solver_handoff_gain_ms: float = 0.05,
    ):
        if not 0.0 <= repair_threshold <= 1.0:
            raise ValueError("repair threshold must be within [0, 1]")
        self.sources = list(sources) if sources is not None else None
        self.method = method
        self.repair_threshold = repair_threshold
        # Rows whose largest violation undercut reaches this magnitude are
        # re-solved in C instead of re-relaxed in Python: gains that big
        # (a link appeared/disappeared) re-hang whole regions, where the
        # batched solver wins.  Purely a performance dial — results are
        # byte-identical either way.
        self.solver_handoff_gain_ms = solver_handoff_gain_ms
        # Adaptive churn guard: when most rows of a table needed repair,
        # the scan/verify machinery is pure overhead on top of near-full
        # solver work, so the table's next few epochs cold-solve directly
        # and the repair path is re-probed afterwards.  Keyed per table
        # shape so the main and any extra single-source tables adapt
        # independently.  Again a dial, never a correctness lever.
        self.churn_bypass_threshold = 0.5
        self.churn_bypass_epochs = 8
        self._bypass_remaining: dict[tuple, int] = {}
        self.stats = PathEngineStats()

    def reset_stats(self) -> None:
        """Zero all counters (used by benchmarks between phases)."""
        self.stats = PathEngineStats()

    # -- cold path -------------------------------------------------------

    def solve(
        self, graph: NetworkGraph, sources: Optional[Sequence[int]] = None
    ) -> ShortestPaths:
        """Cold solve (counted): the rebuild leg of the dispatch."""
        table = ShortestPaths(
            graph,
            sources=sources if sources is not None else self.sources,
            method=self.method,
        )
        self.stats.cold_solves += 1
        self.stats.solver_calls += 1
        self.stats.rows_solved += len(table.sources)
        return table

    # -- incremental path ------------------------------------------------

    def advance(
        self, previous: ShortestPaths, graph: NetworkGraph, diff: TopologyDiff
    ) -> ShortestPaths:
        """Advance a solved table across one epoch's topology diff.

        ``previous`` must be the table of ``diff.previous`` and ``graph``
        the diff's current graph; distances and reachability of the result
        are byte-identical to a cold solve on ``graph``.  Incompatible
        inputs (non-Dijkstra table, foreign graph) degrade to a cold
        solve with the table's own sources.
        """
        if (
            previous.method != "dijkstra"
            or previous.graph is not diff.previous
            or graph is not diff.current
            or len(graph.index) != previous._distances.shape[1]
        ):
            return self.solve(graph, sources=previous.sources)
        source_count = len(previous.sources)
        # "none": identical delays (an empty diff, or bandwidth-only
        # changes) keep the previous trees exactly valid.
        if diff.is_empty or (
            diff.is_structural_noop and diff.delay_changed.size == 0
        ):
            self.stats.empty_reuses += 1
            self.stats.rows_reused += source_count
            return previous._rebind(graph)

        guard_key = (source_count, previous.sources[0], previous.sources[-1])
        remaining = self._bypass_remaining.get(guard_key, 0)
        if remaining > 0:
            self._bypass_remaining[guard_key] = remaining - 1
            self.stats.bypassed_epochs += 1
            return self.solve(graph, sources=previous.sources)

        n = len(graph.index)
        weights = graph.clamped_delays_ms()
        tree_matrix = previous._tree_matrix_for(graph, diff)
        forest = previous._ensure_forest()

        # Re-sum the previous trees with the new weights, one vectorised
        # gather per depth level.  Removed tree edges weigh ``inf``, which
        # propagates down their whole subtree — exactly the set of nodes
        # whose old path is gone.
        distances = np.full(source_count * n, np.inf)
        distances[forest.root_flat] = 0.0
        matrix_flat = tree_matrix.reshape(-1)
        node_weights = np.where(
            matrix_flat >= 0, weights[np.maximum(matrix_flat, 0)], np.inf
        )
        ordered_weights = node_weights[forest.ordered_nodes]
        for start, stop in forest.level_slices:
            distances[forest.ordered_nodes[start:stop]] = (
                distances[forest.ordered_parents[start:stop]]
                + ordered_weights[start:stop]
            )
        distances = distances.reshape(source_count, n)

        # Verification scope: on structural epochs every row is checked
        # against every edge; on delay-only epochs the edge→tree
        # membership index narrows the full check to sources whose tree
        # traverses a changed edge, and the remaining rows only need the
        # decreased-edge test (an increased non-tree edge cannot create a
        # violation, and their re-summed rows are bitwise unchanged).
        node_a, node_b = graph.node_a, graph.node_b
        collected: list[tuple[np.ndarray, ...]] = []

        def _collect(rows: np.ndarray, edge_ids: Optional[np.ndarray]) -> None:
            if rows.size == 0 or (edge_ids is not None and edge_ids.size == 0):
                return
            ea = node_a if edge_ids is None else node_a[edge_ids]
            eb = node_b if edge_ids is None else node_b[edge_ids]
            ew = weights if edge_ids is None else weights[edge_ids]
            sub = distances if rows.size == distances.shape[0] else distances[rows]
            da = sub[:, ea]
            db = sub[:, eb]
            forward_candidate = da + ew
            reverse_candidate = db + ew
            forward = forward_candidate < db
            reverse = reverse_candidate < da
            # Fast exit for the common steady epoch: a pair of boolean
            # reductions is much cheaper than materialising index arrays.
            if not (forward.any() or reverse.any()):
                return
            f_rows, f_edges = np.nonzero(forward)
            r_rows, r_edges = np.nonzero(reverse)
            global_ids = (
                np.concatenate([f_edges, r_edges])
                if edge_ids is None
                else np.concatenate([edge_ids[f_edges], edge_ids[r_edges]])
            )
            collected.append((
                np.concatenate([rows[f_rows], rows[r_rows]]),
                np.concatenate([ea[f_edges], eb[r_edges]]),
                np.concatenate([eb[f_edges], ea[r_edges]]),
                global_ids,
                # How much the candidate undercuts the current value —
                # ``inf`` when it reconnects an unreachable node.  Used
                # only to route the row to heap repair vs the solver.
                np.concatenate([
                    db[f_rows, f_edges] - forward_candidate[f_rows, f_edges],
                    da[r_rows, r_edges] - reverse_candidate[r_rows, r_edges],
                ]),
            ))

        if diff.is_structural_noop:
            changed = diff.delay_changed
            membership = previous._membership_for(graph, diff)
            tree_affected = (
                membership[:, changed].any(axis=1)
                if changed.size
                else np.zeros(source_count, dtype=bool)
            )
            # ``changed`` holds *current*-graph edge ids; resolve the old
            # weights through the previous graph's own pair lookup instead
            # of assuming the two epochs share edge-id order.
            previous_ids = diff.previous.edge_ids_between(
                node_a[changed], node_b[changed]
            )
            previous_weights = np.maximum(
                diff.previous.delays_ms[previous_ids], DELAY_EPSILON_MS
            )
            decreased = changed[weights[changed] < previous_weights]
            _collect(np.nonzero(tree_affected)[0], None)
            _collect(np.nonzero(~tree_affected)[0], decreased)
            self.stats.repaired_epochs += 1
        else:
            _collect(np.arange(source_count), None)
            self.stats.structural_epochs += 1

        if not collected:
            # No row needed repair: predecessors are untouched, so the
            # tree-edge and membership caches stay valid for the next
            # epoch.
            self.stats.rows_reused += source_count
            return ShortestPaths._from_arrays(
                graph, previous.sources, "dijkstra", distances,
                previous._predecessors, caches=previous._caches,
            )

        seed_rows = np.concatenate([c[0] for c in collected])
        seed_parents = np.concatenate([c[1] for c in collected])
        seed_children = np.concatenate([c[2] for c in collected])
        seed_edges = np.concatenate([c[3] for c in collected])
        seed_gains = np.concatenate([c[4] for c in collected])
        violated_rows = np.unique(seed_rows)
        seed_counts = np.bincount(seed_rows, minlength=source_count)
        # Largest *finite* undercut per row: a finite multi-millisecond
        # gain means a better link rewired a whole region (solver
        # territory), while ``inf`` seeds merely mark the boundary of a
        # severed subtree — a bounded re-hang the heap handles well.
        row_gain = np.zeros(source_count)
        finite_gains = np.isfinite(seed_gains)
        np.maximum.at(row_gain, seed_rows[finite_gains], seed_gains[finite_gains])

        predecessors = previous._predecessors.copy()
        budget = max(32, int(self.repair_threshold * n))
        solver_rows: list[int] = []
        adjacency_lists: Optional[tuple[list, list, list]] = None
        for row in violated_rows.tolist():
            # Rows hit by a large rewrite (a link appearing/disappearing
            # shifts delays by whole milliseconds and re-hangs a big
            # region) go straight to the C solver; the Python re-relaxation
            # only pays for the frequent small repairs.
            if (
                seed_counts[row] > budget
                or row_gain[row] >= self.solver_handoff_gain_ms
            ):
                solver_rows.append(row)
                continue
            if adjacency_lists is None:
                indptr, adj_nodes, adj_edges = graph.adjacency_arrays()
                adjacency_lists = (
                    indptr.tolist(),
                    adj_nodes.tolist(),
                    weights[adj_edges].tolist(),
                )
            mask = seed_rows == row
            seeds = list(zip(
                seed_parents[mask].tolist(),
                seed_children[mask].tolist(),
                seed_edges[mask].tolist(),
            ))
            repair = self._heap_repair(
                *adjacency_lists, weights, distances[row], seeds, budget
            )
            if repair is None:
                solver_rows.append(row)
                continue
            settles, improved, new_parents = repair
            if improved:
                nodes = np.fromiter(improved.keys(), np.int64, len(improved))
                distances[row, nodes] = np.fromiter(
                    improved.values(), np.float64, len(improved)
                )
                predecessors[row, nodes] = np.fromiter(
                    (new_parents[node] for node in improved), np.int32, len(improved)
                )
            self.stats.rows_repaired += 1
            self.stats.heap_settles += settles
        if solver_rows:
            solved_distances, solved_predecessors = csgraph.dijkstra(
                graph.delay_matrix(),
                directed=False,
                indices=[previous.sources[row] for row in solver_rows],
                return_predecessors=True,
            )
            distances[solver_rows] = np.atleast_2d(solved_distances)
            predecessors[solver_rows] = np.atleast_2d(solved_predecessors)
            self.stats.solver_calls += 1
            self.stats.rows_solved += len(solver_rows)
        self.stats.rows_reused += source_count - violated_rows.size
        # Bypass trigger: when most rows went to the C solver anyway, the
        # scan/verify machinery was pure overhead on top of a near-full
        # solve — cold-solve the next few epochs and re-probe after.
        if (
            len(solver_rows) >= 3
            and len(solver_rows) >= self.churn_bypass_threshold * source_count
        ):
            self._bypass_remaining[guard_key] = self.churn_bypass_epochs
        caches = self._patched_caches(graph, tree_matrix, previous._predecessors, predecessors)
        return ShortestPaths._from_arrays(
            graph, previous.sources, "dijkstra", distances, predecessors,
            caches=caches,
        )

    @staticmethod
    def _patched_caches(
        graph: NetworkGraph,
        tree_matrix: np.ndarray,
        old_predecessors: np.ndarray,
        new_predecessors: np.ndarray,
    ) -> _PathCaches:
        """Tree-edge matrix for the next epoch, patched where pred changed.

        Repairs touch a small fraction of the predecessor entries, so the
        node-indexed matrix is point-patched instead of rebuilt.
        """
        caches = _PathCaches()
        caches.edges_token = graph.structure_token
        matrix = tree_matrix.copy()
        rows, cols = np.nonzero(new_predecessors != old_predecessors)
        parents = new_predecessors[rows, cols].astype(np.int64)
        matrix[rows, cols] = -1
        valid = parents >= 0
        if valid.any():
            matrix[rows[valid], cols[valid]] = graph.edge_ids_between(
                parents[valid], cols[valid]
            )
        caches.tree_edge_matrix = matrix
        return caches

    @staticmethod
    def _heap_repair(
        indptr: list[int],
        neighbors: list[int],
        adjacency_weights: list[float],
        weights: np.ndarray,
        dist_row: np.ndarray,
        seeds: list[tuple[int, int, int]],
        budget: int,
    ) -> Optional[tuple[int, dict[int, float], dict[int, int]]]:
        """Dijkstra-style re-relaxation restricted to the affected subtrees.

        Seeded with the violated directed edges, relaxes to the unique
        fixed point where no edge can improve — which equals the cold
        solve bit for bit (see the module docstring).  Improvements are
        tracked in a dict overlay over the (untouched) ``dist_row``, so a
        repair touching ``k`` nodes costs O(k·degree) regardless of the
        row length.  Returns ``(settles, improved, parents)``, or None
        when the touched fraction exceeded the budget (the caller then
        recomputes the row with the batched solver instead).
        """
        base = dist_row.item
        improved: dict[int, float] = {}
        parents: dict[int, int] = {}
        heap: list[tuple[float, int]] = []
        push = heapq.heappush
        pop = heapq.heappop
        get = improved.get
        for parent, child, edge in seeds:
            source_value = get(parent)
            if source_value is None:
                source_value = base(parent)
            candidate = source_value + float(weights[edge])
            current = get(child)
            if current is None:
                current = base(child)
            if candidate < current:
                improved[child] = candidate
                parents[child] = parent
                push(heap, (candidate, child))
        settles = 0
        while heap:
            distance, node = pop(heap)
            if distance > improved[node]:
                continue  # stale entry: the node improved after this push
            settles += 1
            if settles > budget:
                return None
            for position in range(indptr[node], indptr[node + 1]):
                candidate = distance + adjacency_weights[position]
                neighbor = neighbors[position]
                current = get(neighbor)
                if current is None:
                    current = base(neighbor)
                if candidate < current:
                    improved[neighbor] = candidate
                    parents[neighbor] = node
                    push(heap, (candidate, neighbor))
        return settles, improved, parents
