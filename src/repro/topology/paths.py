"""Shortest network paths and end-to-end latency within the constellation.

Celestial computes shortest paths with efficient implementations of
Dijkstra's algorithm and the Floyd-Warshall algorithm (§3.1).  Both are
available here, backed by ``scipy.sparse.csgraph``: Dijkstra from a set of
source nodes (the default, scales to Starlink-sized constellations), and
Floyd-Warshall for dense all-pairs computation on smaller topologies.

Both solvers treat explicit zeros in the weight matrix as *absent* edges
(the dense Floyd-Warshall input drops them outright in ``toarray()``), so
:meth:`repro.topology.graph.NetworkGraph.delay_matrix` clamps zero-delay
links to ``DELAY_EPSILON_MS``; reported delays may therefore exceed the true
sum of hop delays by at most one nanosecond per hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Optional, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.topology.graph import NetworkGraph


@dataclass(frozen=True)
class PathResult:
    """A shortest path between two nodes with its end-to-end delay."""

    source: int
    target: int
    delay_ms: float
    hops: tuple[int, ...]

    @property
    def reachable(self) -> bool:
        """Whether a path exists."""
        return np.isfinite(self.delay_ms)

    @property
    def hop_count(self) -> int:
        """Number of links traversed (0 if unreachable or source == target)."""
        return max(0, len(self.hops) - 1)

    @property
    def rtt_ms(self) -> float:
        """Round-trip time assuming the symmetric path is used both ways."""
        return 2.0 * self.delay_ms


class ShortestPaths:
    """Shortest paths from a set of source nodes over a network snapshot."""

    def __init__(
        self,
        graph: NetworkGraph,
        sources: Optional[Sequence[int]] = None,
        method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
    ):
        self.graph = graph
        matrix = graph.delay_matrix()
        node_count = matrix.shape[0]
        if sources is None:
            sources = list(range(node_count))
        self.sources = list(sources)
        if not self.sources:
            raise ValueError("at least one source node is required")
        for source in self.sources:
            if not 0 <= source < node_count:
                raise ValueError(f"source {source} out of range")
        self.method = method
        if method == "dijkstra":
            distances, predecessors = csgraph.dijkstra(
                matrix, directed=False, indices=self.sources, return_predecessors=True
            )
        elif method == "floyd-warshall":
            # The matrix is passed in sparse form: scipy's dense conversion
            # nulls out weights below ~1e-8 (not just exact zeros), which
            # would drop the epsilon-clamped zero-delay links; sparse input
            # keeps every stored entry as an edge.
            all_distances, all_predecessors = csgraph.floyd_warshall(
                matrix, directed=False, return_predecessors=True
            )
            distances = all_distances[self.sources]
            predecessors = all_predecessors[self.sources]
        else:
            raise ValueError(f"unknown shortest path method: {method!r}")
        self._row_of = {source: row for row, source in enumerate(self.sources)}
        self._distances = np.atleast_2d(distances)
        self._predecessors = np.atleast_2d(predecessors)

    def has_source(self, node: int) -> bool:
        """Whether shortest paths were computed from this node."""
        return node in self._row_of

    def delay_ms(self, source: int, target: int) -> float:
        """One-way shortest-path delay [ms]; ``inf`` if unreachable."""
        row = self._row_for(source)
        return float(self._distances[row, target])

    def rtt_ms(self, source: int, target: int) -> float:
        """Round-trip delay [ms] over the symmetric shortest path."""
        return 2.0 * self.delay_ms(source, target)

    def reachable(self, source: int, target: int) -> bool:
        """Whether the target can be reached from the source."""
        return np.isfinite(self.delay_ms(source, target))

    def path(self, source: int, target: int) -> PathResult:
        """Full path reconstruction between a source and a target node."""
        row = self._row_for(source)
        delay = float(self._distances[row, target])
        if not np.isfinite(delay):
            return PathResult(source, target, float("inf"), ())
        if source == target:
            return PathResult(source, target, 0.0, (source,))
        hops = [target]
        current = target
        predecessors = self._predecessors[row]
        while current != source:
            current = int(predecessors[current])
            if current < 0:
                return PathResult(source, target, float("inf"), ())
            hops.append(current)
        hops.reverse()
        return PathResult(source, target, delay, tuple(hops))

    def delays_from(self, source: int) -> np.ndarray:
        """Vector of one-way delays [ms] from a source to every node."""
        return self._distances[self._row_for(source)].copy()

    def nearest(self, source: int, candidates: Iterable[int]) -> Optional[int]:
        """The candidate node with the lowest delay from ``source``, or None."""
        candidates = list(candidates)
        if not candidates:
            return None
        delays = [self.delay_ms(source, candidate) for candidate in candidates]
        best = int(np.argmin(delays))
        if not np.isfinite(delays[best]):
            return None
        return candidates[best]

    def _row_for(self, source: int) -> int:
        if source not in self._row_of:
            raise KeyError(f"node {source} was not used as a source")
        return self._row_of[source]
