"""Shortest network paths and end-to-end latency within the constellation.

Celestial computes shortest paths with efficient implementations of
Dijkstra's algorithm and the Floyd-Warshall algorithm (§3.1).  Both are
available here, backed by ``scipy.sparse.csgraph``: Dijkstra from a set of
source nodes (the default, scales to Starlink-sized constellations), and
Floyd-Warshall for dense all-pairs computation on smaller topologies.

Both solvers treat explicit zeros in the weight matrix as *absent* edges
(the dense Floyd-Warshall input drops them outright in ``toarray()``), so
:meth:`repro.topology.graph.NetworkGraph.delay_matrix` clamps zero-delay
links to ``DELAY_EPSILON_MS``; reported delays may therefore exceed the true
sum of hop delays by at most one nanosecond per hop.

Incremental engine: none / repair / rebuild
-------------------------------------------

Consecutive constellation epochs share almost their entire shortest-path
structure, so rerunning a cold solve every epoch wastes the work the
differential pipeline already did.  :class:`PathEngine` advances a solved
:class:`ShortestPaths` table from one epoch to the next, dispatching on the
epoch's :class:`~repro.topology.graph.TopologyDiff`:

* **none** — the diff is empty (or touches only bandwidths): the previous
  trees are returned verbatim, rebound to the new graph.  Zero solver work.
* **repair** — delays moved and/or a few links appeared or disappeared:
  the previous distances are carried forward directly.  They stay exact
  wherever the supporting tree path survived unchanged; nodes whose tree
  path lost an edge or crosses a *raised* delay are invalidated to
  ``inf`` (the whole severed subtree, found by pointer-doubling the
  ancestor chain of the directly hit nodes — ``O(log depth)`` full-array
  gathers, no forest rebuild).  Seeds are then exactly the edges that can
  improve something: the finite→``inf`` boundary of the invalidated
  region (gathered from the CSR adjacency of the hit nodes) plus every
  added or delay-decreased edge checked against all rows.  Unchanged
  edges between two carried finite values cannot violate Bellman
  optimality — both endpoints kept their previous fixed-point values —
  so no full edge scan is needed.  All violated rows of a table are then
  repaired in one batched call to the **bounded regional re-solve
  kernel** (:mod:`repro.topology._kernels`), which relaxes from the
  violated edges and stays inside the affected region; only rows whose
  violated-edge count reaches the node count (wholesale rewiring, where
  a bounded traversal degenerates to a full one) fall back to a batched
  ``csgraph.dijkstra``.  With the kernel disabled
  (``kernel_backend=None``) rows are instead repaired by a
  Ramalingam–Reps-style Python heap re-relaxation seeded from the
  violated edges, handing off to the C solver when the touched fraction
  exceeds ``repair_threshold`` or a violation's finite undercut reaches
  ``solver_handoff_gain_ms`` (a new/disappeared link re-hanging a whole
  region).
* **rebuild** — incompatible tables (different sources/method, foreign
  graph) degrade to a cold solve.

For delay-only diffs the engine first consults a reverse edge→tree
membership index (built once per structure epoch from the CSR edge-id
arrays, see :meth:`~repro.topology.graph.NetworkGraph.edge_membership`):
sources whose trees traverse no raised edge have nothing to invalidate,
so the whole hit-detection pass is skipped and only the cheap
decreased-edge check runs against their carried rows.

An adaptive churn guard watches the dispatch outcome: when most of a
table's rows were handed to the C solver anyway, the constellation is in
a regime of genuine wholesale route churn (every satellite moves every
epoch; handovers re-hang large regions) where the scan/verify machinery
is pure overhead — the table's next few epochs cold-solve directly, and
the repair path is re-probed afterwards.  The engine therefore degrades
to cold-solve cost plus noise in the worst case, while quiet and
localized workloads (bounded scenarios, fault injection, bandwidth-only
updates, replays) keep the full reuse benefit.

Invariants
~~~~~~~~~~

The engine's output is **byte-identical in distances and reachability** to
a cold solve on the same graph.  This holds exactly — not approximately —
because IEEE-754 addition is monotone: a distance produced by Dijkstra is
the minimum over all paths of the left-to-right floating-point sum of the
(epsilon-clamped) hop delays.  The carried rows are such path sums: a
finite carried value is the previous fixed point, whose supporting tree
path survived with every hop weight bitwise unchanged — the identical
left-to-right sum in the current graph (a *decreased* hop weight is fine
too: the decreased edge itself is a violated seed, and the strict
improvement cascades down the subtree rewriting every descendant to a
current path sum; where rounding absorbs the decrease, the old bytes
*are* the current sum).  When no edge violates ``d[v] <= d[u] + w`` the
standard optimality proof carries over verbatim to floats, so the row
equals the cold solve bit for bit.  The heap repair relaxes to the same
fixed point.  Predecessor trees may differ from a cold solve only
between equal-delay alternatives.

The argument extends unchanged to the bounded regional re-solve kernel:
its input rows are carried path sums or ``inf`` (valid upper bounds),
every relaxation it accepts writes the left-to-right float sum of an
actual path, and it runs until no edge improves any value.  Because the
constellation snaps delays to a binary ``2^-20`` ms grid before they
reach the solvers, the no-improving-edge fixed point is the *unique*
minimum over paths of the float path sum — independent of relaxation
order — so the kernel's heap-ordered (Numba) and frontier-ordered
(NumPy) implementations produce identical distance bytes, both equal to
the cold solve (see the :mod:`repro.topology._kernels` docstring for the
seeding-sufficiency proof).

Epoch-batched multi-table advance
---------------------------------

:meth:`PathEngine.advance_all` advances *many* tables across the same
diff in one pass.  Semantically it is the per-table loop
``[engine.advance(t, graph, diff) for t in tables]`` — distances and
reachability of every published table are byte-identical — but the
per-epoch fixed costs (CSR adjacency patch, raised/decreased edge
classification, seed gathering, closure rounds) are paid once for the
whole batch, and every violated row of every table is stacked into ONE
flat kernel invocation whose row axis spans tables.  The identity holds
because every step of :meth:`PathEngine.advance` is **row-local**:
direct-hit detection tests each ``(row, edge)`` pair independently, the
pointer-doubling closure gathers ancestors within a row's own
``n``-slice of the flat index space, boundary and decreased-edge seeds
are per-row violations, and the kernel's relaxations read and write
only within ``row * n .. (row + 1) * n`` (extra global closure rounds
demanded by a slow-converging row are idempotent no-ops for rows that
already converged).  Stacking rows across tables therefore performs the
identical per-row arithmetic in the identical per-row order, so the
published bytes match the per-table loop's — which matches the cold
solve by the argument above.  At 64+ carried tables this turns hundreds
of small per-table kernel calls and seed scans per epoch into one large
batched call, which is where the all-pairs serving shape
(``ConstellationCalculation(all_pairs=True)``) gets its epoch speedup.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, fields
from typing import Iterable, Literal, Optional, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.topology import _kernels
from repro.topology.graph import DELAY_EPSILON_MS, NetworkGraph, TopologyDiff

#: Sentinel used by ``scipy.sparse.csgraph`` for "no predecessor" (the
#: source itself and unreachable nodes).  The engine preserves it.
NO_PREDECESSOR = -9999


@dataclass(frozen=True)
class PathResult:
    """A shortest path between two nodes with its end-to-end delay."""

    source: int
    target: int
    delay_ms: float
    hops: tuple[int, ...]

    @property
    def reachable(self) -> bool:
        """Whether a path exists."""
        return np.isfinite(self.delay_ms)

    @property
    def hop_count(self) -> int:
        """Number of links traversed (0 if unreachable or source == target)."""
        return max(0, len(self.hops) - 1)

    @property
    def rtt_ms(self) -> float:
        """Round-trip time assuming the symmetric path is used both ways."""
        return 2.0 * self.delay_ms


class _PathCaches:
    """Per-table engine caches, shared between rebound epoch views.

    ``tree_edge_matrix`` holds, per ``(source row, node)``, the edge id of
    the node's tree edge ``(pred, node)`` in the graph identified by
    ``edges_token`` (``-1`` for roots and unreachable nodes).  Being
    node-indexed, the matrix survives predecessor rewrites through cheap
    point patches and structural epochs through one ``edge_id_map``
    gather.  The edge→tree membership index is derived from it on demand.
    """

    __slots__ = ("edges_token", "tree_edge_matrix", "membership")

    def __init__(self):
        self.edges_token: Optional[object] = None
        self.tree_edge_matrix: Optional[np.ndarray] = None
        self.membership: Optional[np.ndarray] = None


class ShortestPaths:
    """Shortest paths from a set of source nodes over a network snapshot.

    Constructing an instance runs a cold solve; :class:`PathEngine`
    produces equivalent instances incrementally via
    :meth:`PathEngine.advance` and keeps :class:`ShortestPaths` as the
    query façade, so consumers are oblivious to how a table was computed.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        sources: Optional[Sequence[int]] = None,
        method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
    ):
        self.graph = graph
        matrix = graph.delay_matrix()
        node_count = matrix.shape[0]
        if sources is None:
            sources = list(range(node_count))
        self.sources = list(sources)
        if not self.sources:
            raise ValueError("at least one source node is required")
        for source in self.sources:
            if not 0 <= source < node_count:
                raise ValueError(f"source {source} out of range")
        self.method = method
        if method == "dijkstra":
            distances, predecessors = csgraph.dijkstra(
                matrix, directed=False, indices=self.sources, return_predecessors=True
            )
        elif method == "floyd-warshall":
            # The matrix is passed in sparse form: scipy's dense conversion
            # nulls out weights below ~1e-8 (not just exact zeros), which
            # would drop the epsilon-clamped zero-delay links; sparse input
            # keeps every stored entry as an edge.
            all_distances, all_predecessors = csgraph.floyd_warshall(
                matrix, directed=False, return_predecessors=True
            )
            distances = all_distances[self.sources]
            predecessors = all_predecessors[self.sources]
        else:
            raise ValueError(f"unknown shortest path method: {method!r}")
        self._row_of = {source: row for row, source in enumerate(self.sources)}
        self._distances = np.atleast_2d(distances)
        self._predecessors = np.atleast_2d(predecessors)
        self._caches = _PathCaches()

    @classmethod
    def _from_arrays(
        cls,
        graph: NetworkGraph,
        sources: Sequence[int],
        method: str,
        distances: np.ndarray,
        predecessors: np.ndarray,
        caches: Optional[_PathCaches] = None,
    ) -> "ShortestPaths":
        """Build a table around already-solved arrays (engine fast path)."""
        table = cls.__new__(cls)
        table.graph = graph
        table.sources = list(sources)
        table.method = method
        table._row_of = {source: row for row, source in enumerate(table.sources)}
        table._distances = np.atleast_2d(distances)
        table._predecessors = np.atleast_2d(predecessors)
        table._caches = caches if caches is not None else _PathCaches()
        return table

    def _rebind(self, graph: NetworkGraph) -> "ShortestPaths":
        """A view of this table over a new (identically weighted) graph.

        Arrays and engine caches are shared, never copied; tables are
        treated as immutable once published.
        """
        return ShortestPaths._from_arrays(
            graph, self.sources, self.method, self._distances, self._predecessors,
            caches=self._caches,
        )

    def has_source(self, node: int) -> bool:
        """Whether shortest paths were computed from this node."""
        return node in self._row_of

    def delay_ms(self, source: int, target: int) -> float:
        """One-way shortest-path delay [ms]; ``inf`` if unreachable."""
        row = self._row_for(source)
        return float(self._distances[row, target])

    def rtt_ms(self, source: int, target: int) -> float:
        """Round-trip delay [ms] over the symmetric shortest path."""
        return 2.0 * self.delay_ms(source, target)

    def reachable(self, source: int, target: int) -> bool:
        """Whether the target can be reached from the source."""
        return np.isfinite(self.delay_ms(source, target))

    def path(self, source: int, target: int) -> PathResult:
        """Full path reconstruction between a source and a target node."""
        row = self._row_for(source)
        delay = float(self._distances[row, target])
        if not np.isfinite(delay):
            return PathResult(source, target, float("inf"), ())
        if source == target:
            return PathResult(source, target, 0.0, (source,))
        hops = [target]
        current = target
        predecessors = self._predecessors[row]
        while current != source:
            current = int(predecessors[current])
            if current < 0:
                return PathResult(source, target, float("inf"), ())
            hops.append(current)
        hops.reverse()
        return PathResult(source, target, delay, tuple(hops))

    def delays_from(self, source: int) -> np.ndarray:
        """Vector of one-way delays [ms] from a source to every node."""
        return self._distances[self._row_for(source)].copy()

    def nearest(self, source: int, candidates: Iterable[int]) -> Optional[int]:
        """The candidate node with the lowest delay from ``source``, or None."""
        candidates = np.fromiter(candidates, dtype=np.int64)
        if candidates.size == 0:
            return None
        delays = self._distances[self._row_for(source)][candidates]
        best = int(np.argmin(delays))
        if not np.isfinite(delays[best]):
            return None
        return int(candidates[best])

    def _row_for(self, source: int) -> int:
        if source not in self._row_of:
            raise KeyError(f"node {source} was not used as a source")
        return self._row_of[source]

    # -- engine cache plumbing ------------------------------------------

    def _tree_matrix_for(
        self, graph: NetworkGraph, diff: Optional[TopologyDiff] = None
    ) -> np.ndarray:
        """Node-indexed tree-edge-id matrix in ``graph`` (-1 where absent).

        Cached per structure epoch: consecutive steady-state graphs share
        their sorted-key array object, so no lookup runs while the edge
        set is unchanged.  Across a structural epoch the cached ids are
        carried over through the diff's
        :meth:`~repro.topology.graph.TopologyDiff.edge_id_map` (one
        gather); only a cold cache pays the full pair lookup.
        """
        token = graph.structure_token
        cache = self._caches
        if cache.tree_edge_matrix is None or cache.edges_token is not token:
            matrix = None
            if (
                cache.tree_edge_matrix is not None
                and diff is not None
                and cache.edges_token is diff.previous.structure_token
            ):
                id_map = diff.edge_id_map()
                old = cache.tree_edge_matrix
                matrix = np.where(old >= 0, id_map[np.maximum(old, 0)], -1)
            if matrix is None:
                predecessors = self._predecessors
                matrix = np.full(predecessors.shape, -1, dtype=np.int64)
                rows, cols = np.nonzero(predecessors >= 0)
                matrix[rows, cols] = graph.edge_ids_between(
                    predecessors[rows, cols].astype(np.int64), cols
                )
            cache.tree_edge_matrix = matrix
            cache.edges_token = token
            cache.membership = None
        return cache.tree_edge_matrix

    def _membership_for(
        self, graph: NetworkGraph, diff: Optional[TopologyDiff] = None
    ) -> np.ndarray:
        """Reverse edge→tree membership index (``(S, E)`` bool)."""
        if self._caches.membership is None:
            matrix = self._tree_matrix_for(graph, diff)
            rows, cols = np.nonzero(matrix >= 0)
            self._caches.membership = graph.edge_membership(
                rows, matrix[rows, cols], matrix.shape[0]
            )
        return self._caches.membership


@dataclass
class PathEngineStats:
    """Counters describing how the engine advanced its tables.

    ``solver_calls`` counts ``csgraph`` invocations (the benchmark's
    "zero Dijkstra solves on empty diffs" assertion); the ``rows_*``
    counters attribute every published row to how it was produced
    (``rows_kernel`` rows went through the batched bounded regional
    re-solve, ``kernel_calls``/``kernel_settles`` size that work).  The
    ``membership_*`` pair proves the edge→tree membership index is
    carried across delay-only epochs instead of rebuilt per diff.

    Multi-table attribution: ``tables_advanced`` counts every table
    advanced through :meth:`PathEngine.advance` or
    :meth:`PathEngine.advance_all`; ``batched_calls``/``batched_rows``
    size the epoch-batched path (one batch per :meth:`advance_all`
    invocation that formed a batch, rows summed across all its tables).
    The ``cache_*`` trio is incremented by the extra-table cache in
    :mod:`repro.core.constellation` — lookup hits and misses in
    ``_paths_from`` and insert-time evictions — so all-pairs runs are
    observable end to end through ``path_statistics``.
    """

    cold_solves: int = 0
    empty_reuses: int = 0
    repaired_epochs: int = 0
    structural_epochs: int = 0
    bypassed_epochs: int = 0
    solver_calls: int = 0
    kernel_calls: int = 0
    rows_solved: int = 0
    rows_reused: int = 0
    rows_repaired: int = 0
    rows_kernel: int = 0
    heap_settles: int = 0
    kernel_settles: int = 0
    membership_rebuilds: int = 0
    membership_reuses: int = 0
    tables_advanced: int = 0
    batched_calls: int = 0
    batched_rows: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy (JSON-serialisable, used by the benchmarks)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PathEngine:
    """Incremental shortest-path engine over consecutive epoch graphs.

    One engine serves many tables (the main ground-station table plus any
    lazily created single-source satellite tables): :meth:`solve` runs a
    counted cold solve, :meth:`advance` carries a table across a
    :class:`~repro.topology.graph.TopologyDiff` using the none / repair /
    rebuild dispatch described in the module docstring.  Tables are
    immutable; the engine never mutates a published epoch's arrays, so
    keyframe states held by the database stay valid and any retained
    state can seed a replay.
    """

    def __init__(
        self,
        sources: Optional[Sequence[int]] = None,
        method: Literal["dijkstra", "floyd-warshall"] = "dijkstra",
        repair_threshold: float = 0.25,
        solver_handoff_gain_ms: float = 0.05,
        kernel_backend: Optional[str] = "auto",
    ):
        if not 0.0 <= repair_threshold <= 1.0:
            raise ValueError("repair threshold must be within [0, 1]")
        self.sources = list(sources) if sources is not None else None
        self.method = method
        self.repair_threshold = repair_threshold
        # Rows whose largest violation undercut reaches this magnitude are
        # handed off the Python re-relaxation: gains that big (a link
        # appeared/disappeared) re-hang whole regions, which the batched
        # bounded kernel repairs in one call.  Purely a performance dial —
        # results are byte-identical either way.
        self.solver_handoff_gain_ms = solver_handoff_gain_ms
        # Bounded regional re-solve kernel ("auto" → Numba when the
        # [fast] extra is installed, the vectorised NumPy fallback
        # otherwise; None/"off" → the per-source csgraph fallback).
        self.kernel_backend = _kernels.resolve_backend(kernel_backend)
        # Adaptive churn guard: when the epoch amounted to near-full
        # solver work anyway — most rows went to csgraph, or the kernel's
        # bounded traversal effectively swept the whole graph — the
        # scan/verify machinery is pure overhead, so the table's next few
        # epochs cold-solve directly and the repair path is re-probed
        # afterwards.  Keyed per table shape so the main and any extra
        # single-source tables adapt independently.  Again a dial, never
        # a correctness lever.
        self.churn_bypass_threshold = 0.5
        self.churn_bypass_epochs = 8
        # Kernel-regime analogue of the bypass threshold: the fraction of
        # ``kernel rows × n`` settle events at which a "bounded" re-solve
        # is judged to have degenerated into a full Python-speed solve.
        # Wholesale churn (every satellite moves, whole trees re-hang)
        # settles essentially every state, so it sits near 1.0; flicker
        # chains that sever even large subtrees stay well below — 0.85
        # separates the two regimes without ever bypassing a genuinely
        # bounded repair.
        self.churn_settle_fraction = 0.85
        self._bypass_remaining: dict[tuple, int] = {}
        # Per-table work scores of the most recent ``advance_all`` call
        # (parallel to its ``tables`` argument): 0 for pure reuse, ~1 per
        # kernel row, ~4 per solver/cold row.  The constellation's
        # cost-aware extra-table cache folds these into eviction scores.
        self.last_advance_costs: list[float] = []
        self.stats = PathEngineStats()

    def reset_stats(self) -> None:
        """Zero all counters (used by benchmarks between phases)."""
        self.stats = PathEngineStats()

    # -- cold path -------------------------------------------------------

    def solve(
        self, graph: NetworkGraph, sources: Optional[Sequence[int]] = None
    ) -> ShortestPaths:
        """Cold solve (counted): the rebuild leg of the dispatch."""
        table = ShortestPaths(
            graph,
            sources=sources if sources is not None else self.sources,
            method=self.method,
        )
        self.stats.cold_solves += 1
        self.stats.solver_calls += 1
        self.stats.rows_solved += len(table.sources)
        return table

    # -- incremental path ------------------------------------------------

    def advance(
        self, previous: ShortestPaths, graph: NetworkGraph, diff: TopologyDiff
    ) -> ShortestPaths:
        """Advance a solved table across one epoch's topology diff.

        ``previous`` must be the table of ``diff.previous`` and ``graph``
        the diff's current graph; distances and reachability of the result
        are byte-identical to a cold solve on ``graph``.  Incompatible
        inputs (non-Dijkstra table, foreign graph) degrade to a cold
        solve with the table's own sources.
        """
        self.stats.tables_advanced += 1
        if (
            previous.method != "dijkstra"
            or previous.graph is not diff.previous
            or graph is not diff.current
            or len(graph.index) != previous._distances.shape[1]
        ):
            return self.solve(graph, sources=previous.sources)
        source_count = len(previous.sources)
        # "none": identical delays (an empty diff, or bandwidth-only
        # changes) keep the previous trees exactly valid.
        if diff.is_empty or (
            diff.is_structural_noop and diff.delay_changed.size == 0
        ):
            self.stats.empty_reuses += 1
            self.stats.rows_reused += source_count
            return previous._rebind(graph)

        guard_key = self._guard_key(previous)
        remaining = self._bypass_remaining.get(guard_key, 0)
        if remaining > 0:
            self._bypass_remaining[guard_key] = remaining - 1
            self.stats.bypassed_epochs += 1
            return self.solve(graph, sources=previous.sources)

        n = len(graph.index)
        weights = graph.clamped_delays_ms()
        # Patch the CSR adjacency forward instead of re-sorting it from
        # scratch — boundary-seed expansion and the kernel both need it.
        graph.carry_adjacency_from(diff)
        tree_matrix = previous._tree_matrix_for(graph, diff)
        previous_predecessors = previous._predecessors
        node_a, node_b = graph.node_a, graph.node_b

        raised, decreased = self._classify_changed(graph, diff, weights)

        # Directly hit nodes: the tree edge above them disappeared or was
        # delay-raised.  Every other node keeps its carried value (see the
        # module docstring for why those stay bitwise exact).  On
        # delay-only epochs the membership index narrows the gather to
        # sources whose tree traverses a raised edge.
        if diff.is_structural_noop:
            # ``_tree_matrix_for`` above already synced the cache to this
            # epoch's structure token, so a surviving membership index is
            # valid here; count hits to prove the cross-epoch carry.
            if previous._caches.membership is None:
                self.stats.membership_rebuilds += 1
            else:
                self.stats.membership_reuses += 1
            membership = previous._membership_for(graph, diff)
            affected_rows = (
                np.flatnonzero(membership[:, raised].any(axis=1))
                if raised.size
                else np.empty(0, dtype=np.int64)
            )
            self.stats.repaired_epochs += 1
        else:
            affected_rows = np.arange(source_count)
            self.stats.structural_epochs += 1

        # Invalidate the severed subtrees: close the directly hit set over
        # descendants by pointer-doubling the predecessor chains.
        hit, affected_rows, full = self._severed_closure(
            tree_matrix, previous_predecessors, raised, affected_rows,
            source_count, n, weights.size, not diff.is_structural_noop,
        )

        # Carry the previous distances, with the hit region pushed to
        # ``inf``; the published array is only copied when something
        # actually needs invalidating or repairing.
        distances = previous._distances
        owned = False
        if hit is not None:
            hit2d = hit.reshape(affected_rows.size, n)
            if full:
                invalid = hit2d
            else:
                invalid = np.zeros((source_count, n), dtype=bool)
                invalid[affected_rows] = hit2d
            distances = np.where(invalid, np.inf, distances)
            owned = True

        collected: list[tuple[np.ndarray, ...]] = []

        # Seeds, part 1 — the finite→inf boundary of the invalidated
        # region: every edge from a still-finite node into a hit node is a
        # violation by construction (finite + w < inf), so it goes in
        # unchecked with gain ``inf``.
        if hit is not None:
            self._boundary_seeds(
                graph, distances, hit2d, affected_rows, full, collected
            )

        # Seeds, part 2 — every added or delay-decreased edge, checked
        # against all rows.  No other edge can violate Bellman optimality
        # between two carried finite values (module docstring).
        improving = decreased
        if not diff.is_structural_noop and diff.links_added.size:
            improving = np.concatenate([diff.links_added, decreased])
        self._collect_seeds(
            collected, distances, weights, node_a, node_b,
            np.arange(source_count), improving,
        )

        if not collected:
            # No violated edge anywhere: predecessors are untouched, so
            # the tree-edge and membership caches stay valid for the next
            # epoch.  (An invalidated region with no finite boundary is
            # genuinely unreachable — its ``inf`` rows are final.)
            self.stats.rows_reused += source_count
            return ShortestPaths._from_arrays(
                graph, previous.sources, "dijkstra", distances,
                previous._predecessors, caches=previous._caches,
            )

        if not owned:
            distances = distances.copy()
        seed_rows = np.concatenate([c[0] for c in collected])
        seed_parents = np.concatenate([c[1] for c in collected])
        seed_children = np.concatenate([c[2] for c in collected])
        seed_edges = np.concatenate([c[3] for c in collected])
        seed_gains = np.concatenate([c[4] for c in collected])
        violated_rows = np.unique(seed_rows)
        seed_counts = np.bincount(seed_rows, minlength=source_count)
        # Largest *finite* undercut per row: a finite multi-millisecond
        # gain means a better link rewired a whole region (solver
        # territory), while ``inf`` seeds merely mark the boundary of a
        # severed subtree — a bounded re-hang the heap handles well.
        row_gain = np.zeros(source_count)
        finite_gains = np.isfinite(seed_gains)
        np.maximum.at(row_gain, seed_rows[finite_gains], seed_gains[finite_gains])

        predecessors = previous._predecessors.copy()
        # A zero threshold disables the Python heap entirely (every seeded
        # row goes straight to the kernel / solver).
        budget = (
            max(32, int(self.repair_threshold * n))
            if self.repair_threshold > 0
            else 0
        )
        if self.kernel_backend is not None:
            # With the batched kernel available the Python heap walk is
            # never the best tool — even tiny repairs batch into the one
            # kernel call more cheaply than they interpret, and skipping
            # the heap also skips materialising the adjacency lists.
            budget = 0
        solver_rows: list[int] = []
        kernel_rows: list[int] = []
        adjacency_lists: Optional[tuple[list, list, list]] = None
        for row in violated_rows.tolist():
            # With the kernel enabled (budget 0) every violated row joins
            # the batched bounded kernel call; the Python re-relaxation
            # below only serves the kernel-disabled configuration, where
            # it pays for the frequent small repairs.  Rows whose
            # violated-edge count reaches the node count are wholesale
            # rewires — a bounded traversal would sweep the whole graph
            # at Python/NumPy speed, so they go to the C solver instead
            # (as does everything when the kernel is disabled).
            if (
                seed_counts[row] > budget
                or row_gain[row] >= self.solver_handoff_gain_ms
            ):
                if self.kernel_backend is None or seed_counts[row] >= n:
                    solver_rows.append(row)
                else:
                    kernel_rows.append(row)
                continue
            if adjacency_lists is None:
                adjacency_lists = graph.adjacency_lists()
            mask = seed_rows == row
            seeds = list(zip(
                seed_parents[mask].tolist(),
                seed_children[mask].tolist(),
                seed_edges[mask].tolist(),
            ))
            repair = self._heap_repair(
                *adjacency_lists, weights, distances[row], seeds, budget
            )
            if repair is None:
                if self.kernel_backend is None:
                    solver_rows.append(row)
                else:
                    kernel_rows.append(row)
                continue
            settles, improved, new_parents = repair
            if improved:
                nodes = np.fromiter(improved.keys(), np.int64, len(improved))
                distances[row, nodes] = np.fromiter(
                    improved.values(), np.float64, len(improved)
                )
                predecessors[row, nodes] = np.fromiter(
                    (new_parents[node] for node in improved), np.int32, len(improved)
                )
            self.stats.rows_repaired += 1
            self.stats.heap_settles += settles
        kernel_settles = 0
        if kernel_rows:
            kernel_settles = self._kernel_resolve(
                graph, weights, distances, predecessors, kernel_rows,
                seed_rows, seed_parents, seed_children, seed_edges,
            )
            self.stats.kernel_calls += 1
            self.stats.rows_kernel += len(kernel_rows)
            self.stats.kernel_settles += kernel_settles
        if solver_rows:
            solved_distances, solved_predecessors = csgraph.dijkstra(
                graph.delay_matrix(),
                directed=False,
                indices=[previous.sources[row] for row in solver_rows],
                return_predecessors=True,
            )
            distances[solver_rows] = np.atleast_2d(solved_distances)
            predecessors[solver_rows] = np.atleast_2d(solved_predecessors)
            self.stats.solver_calls += 1
            self.stats.rows_solved += len(solver_rows)
        self.stats.rows_reused += source_count - violated_rows.size
        # Bypass triggers: when the epoch amounted to near-full solver
        # work anyway — most rows went to the C solver, or the kernel's
        # bounded traversal settled a large fraction of ``rows × n``
        # (wholesale churn, where csgraph's C loop beats it) — the
        # scan/verify machinery was pure overhead: cold-solve the next
        # few epochs and re-probe after.
        if (
            len(solver_rows) >= 3
            and len(solver_rows) >= self.churn_bypass_threshold * source_count
        ) or (
            len(kernel_rows) >= 3
            and len(kernel_rows) >= self.churn_bypass_threshold * source_count
            and kernel_settles >= self.churn_settle_fraction * len(kernel_rows) * n
        ):
            self._bypass_remaining[guard_key] = self.churn_bypass_epochs
        caches = self._patched_caches(
            graph, tree_matrix, previous._caches, previous._predecessors, predecessors
        )
        return ShortestPaths._from_arrays(
            graph, previous.sources, "dijkstra", distances, predecessors,
            caches=caches,
        )

    # -- epoch-batched multi-table path ---------------------------------

    def advance_all(
        self,
        tables: Sequence[ShortestPaths],
        graph: NetworkGraph,
        diff: TopologyDiff,
    ) -> list[ShortestPaths]:
        """Advance many tables across one epoch, sharing the fixed costs.

        Semantically ``[self.advance(t, graph, diff) for t in tables]``
        — distances and reachability of every published table are
        byte-identical to the per-table loop, hence to a cold solve —
        but the per-epoch work (adjacency patch, edge classification,
        seed gathering, closure rounds) runs once for the batch, and
        every violated row across every table joins ONE stacked kernel
        invocation whose row axis spans tables (see the module
        docstring's row-locality argument).  Tables that cannot join
        the batch — incompatible with the diff, or under an active
        churn bypass — fall back to :meth:`advance` individually, as
        does the whole call when the kernel is disabled or the diff is
        trivially reusable.

        Side channel: ``self.last_advance_costs`` is rewritten with a
        list parallel to ``tables`` scoring each table's work this
        epoch (0 for pure reuse, ~1 per kernel row, ~4 per solver/cold
        row); the constellation's cost-aware table cache feeds eviction
        from it.
        """
        tables = list(tables)
        costs = [0.0] * len(tables)
        self.last_advance_costs = costs
        if not tables:
            return []

        def _fallback(index: int, table: ShortestPaths) -> ShortestPaths:
            stats = self.stats
            before = (stats.rows_solved, stats.rows_kernel, stats.rows_repaired)
            advanced = self.advance(table, graph, diff)
            costs[index] = (
                4.0 * (stats.rows_solved - before[0])
                + (stats.rows_kernel - before[1])
                + (stats.rows_repaired - before[2])
            )
            return advanced

        trivial = diff.is_empty or (
            diff.is_structural_noop and diff.delay_changed.size == 0
        )
        if self.kernel_backend is None or trivial:
            return [_fallback(i, t) for i, t in enumerate(tables)]
        results: list[Optional[ShortestPaths]] = [None] * len(tables)
        batch: list[int] = []
        for i, table in enumerate(tables):
            if (
                table.method != "dijkstra"
                or table.graph is not diff.previous
                or graph is not diff.current
                or len(graph.index) != table._distances.shape[1]
                or self._bypass_remaining.get(self._guard_key(table), 0) > 0
            ):
                results[i] = _fallback(i, table)
            else:
                batch.append(i)
        if batch:
            advanced, batch_costs = self._advance_batch(
                [tables[i] for i in batch], graph, diff
            )
            for j, i in enumerate(batch):
                results[i] = advanced[j]
                costs[i] = batch_costs[j]
        return results

    def _advance_batch(
        self, tables: list[ShortestPaths], graph: NetworkGraph, diff: TopologyDiff
    ) -> tuple[list[ShortestPaths], list[float]]:
        """Stacked-row transcription of :meth:`advance` over many tables.

        Runs the identical per-row arithmetic on the vertically stacked
        ``(total_rows, n)`` arrays (every step of :meth:`advance` is
        row-local; see the module docstring), so the published bytes
        match the per-table loop's.  Only called with the kernel
        enabled, so the routing is the budget-0 one: every violated row
        joins the stacked kernel call except wholesale-rewired rows
        (violated-edge count ≥ ``n``), which go to one batched
        ``csgraph`` call covering all tables.

        Published tables hold row-slice views of the stacked arrays —
        tables are immutable once published, so sharing is safe; note a
        slice keeps its whole stacked epoch alive, which is the
        all-pairs serving shape where every table is carried anyway.

        Stats nuance: ``repaired_epochs``/``structural_epochs`` count
        once per *batch* (the epoch classification is shared) and a
        batch contributes at most one ``kernel_calls``/``solver_calls``
        each — that is the point — while the ``rows_*`` counters
        attribute per row exactly as the per-table loop does.  The
        churn guard's settle-fraction test is evaluated batch-wide (a
        dial, never a correctness lever).
        """
        stats = self.stats
        stats.tables_advanced += len(tables)
        stats.batched_calls += 1
        row_counts = np.array([len(t.sources) for t in tables], dtype=np.int64)
        row_starts = np.concatenate(([0], np.cumsum(row_counts)))
        total_rows = int(row_starts[-1])
        stats.batched_rows += total_rows
        n = len(graph.index)
        weights = graph.clamped_delays_ms()
        graph.carry_adjacency_from(diff)
        tree_matrix = np.vstack([t._tree_matrix_for(graph, diff) for t in tables])
        previous_predecessors = np.vstack([t._predecessors for t in tables])
        node_a, node_b = graph.node_a, graph.node_b
        raised, decreased = self._classify_changed(graph, diff, weights)

        if diff.is_structural_noop:
            memberships = []
            for table in tables:
                if table._caches.membership is None:
                    stats.membership_rebuilds += 1
                else:
                    stats.membership_reuses += 1
                memberships.append(table._membership_for(graph, diff))
            membership = np.vstack(memberships)
            affected_rows = (
                np.flatnonzero(membership[:, raised].any(axis=1))
                if raised.size
                else np.empty(0, dtype=np.int64)
            )
            stats.repaired_epochs += 1
        else:
            affected_rows = np.arange(total_rows)
            stats.structural_epochs += 1

        hit, affected_rows, full = self._severed_closure(
            tree_matrix, previous_predecessors, raised, affected_rows,
            total_rows, n, weights.size, not diff.is_structural_noop,
        )

        # ``vstack`` copied, so invalidation can write in place; the
        # values match :meth:`advance`'s copy-on-invalidate exactly.
        distances = np.vstack([t._distances for t in tables])
        collected: list[tuple[np.ndarray, ...]] = []
        if hit is not None:
            hit2d = hit.reshape(affected_rows.size, n)
            if full:
                distances[hit2d] = np.inf
            else:
                invalid = np.zeros((total_rows, n), dtype=bool)
                invalid[affected_rows] = hit2d
                distances[invalid] = np.inf
            self._boundary_seeds(
                graph, distances, hit2d, affected_rows, full, collected
            )
        improving = decreased
        if not diff.is_structural_noop and diff.links_added.size:
            improving = np.concatenate([diff.links_added, decreased])
        self._collect_seeds(
            collected, distances, weights, node_a, node_b,
            np.arange(total_rows), improving,
        )

        if not collected:
            stats.rows_reused += total_rows
            out = []
            for k, table in enumerate(tables):
                if hit is None:
                    out.append(table._rebind(graph))
                else:
                    out.append(ShortestPaths._from_arrays(
                        graph, table.sources, "dijkstra",
                        distances[row_starts[k]:row_starts[k + 1]],
                        table._predecessors, caches=table._caches,
                    ))
            return out, [0.0] * len(tables)

        seed_rows = np.concatenate([c[0] for c in collected])
        seed_parents = np.concatenate([c[1] for c in collected])
        seed_children = np.concatenate([c[2] for c in collected])
        seed_edges = np.concatenate([c[3] for c in collected])
        violated_rows = np.unique(seed_rows)
        seed_counts = np.bincount(seed_rows, minlength=total_rows)
        predecessors = previous_predecessors.copy()
        solver_mask = seed_counts[violated_rows] >= n
        kernel_rows = violated_rows[~solver_mask]
        solver_rows = violated_rows[solver_mask]
        kernel_settles = 0
        if kernel_rows.size:
            kernel_settles = self._kernel_resolve(
                graph, weights, distances, predecessors, kernel_rows.tolist(),
                seed_rows, seed_parents, seed_children, seed_edges,
            )
            stats.kernel_calls += 1
            stats.rows_kernel += int(kernel_rows.size)
            stats.kernel_settles += kernel_settles
        if solver_rows.size:
            table_of_solver = (
                np.searchsorted(row_starts, solver_rows, side="right") - 1
            )
            indices = [
                tables[int(t_index)].sources[int(row - row_starts[t_index])]
                for t_index, row in zip(table_of_solver, solver_rows)
            ]
            solved_distances, solved_predecessors = csgraph.dijkstra(
                graph.delay_matrix(), directed=False, indices=indices,
                return_predecessors=True,
            )
            distances[solver_rows] = np.atleast_2d(solved_distances)
            predecessors[solver_rows] = np.atleast_2d(solved_predecessors)
            stats.solver_calls += 1
            stats.rows_solved += int(solver_rows.size)
        stats.rows_reused += total_rows - int(violated_rows.size)

        # Per-table churn guard and work costs, from the per-table share
        # of kernel/solver rows.
        kernel_counts = np.bincount(
            np.searchsorted(row_starts, kernel_rows, side="right") - 1,
            minlength=len(tables),
        )
        solver_counts = np.bincount(
            np.searchsorted(row_starts, solver_rows, side="right") - 1,
            minlength=len(tables),
        )
        settles_dense = bool(
            kernel_rows.size
            and kernel_settles
            >= self.churn_settle_fraction * kernel_rows.size * n
        )
        costs = [0.0] * len(tables)
        for k, table in enumerate(tables):
            rows_k = int(row_counts[k])
            solver_k = int(solver_counts[k])
            kernel_k = int(kernel_counts[k])
            costs[k] = 4.0 * solver_k + float(kernel_k)
            if (
                solver_k >= 3
                and solver_k >= self.churn_bypass_threshold * rows_k
            ) or (
                kernel_k >= 3
                and kernel_k >= self.churn_bypass_threshold * rows_k
                and settles_dense
            ):
                self._bypass_remaining[self._guard_key(table)] = (
                    self.churn_bypass_epochs
                )

        out = []
        for k, table in enumerate(tables):
            start, stop = int(row_starts[k]), int(row_starts[k + 1])
            caches = self._patched_caches(
                graph, tree_matrix[start:stop], table._caches,
                table._predecessors, predecessors[start:stop],
            )
            out.append(ShortestPaths._from_arrays(
                graph, table.sources, "dijkstra", distances[start:stop],
                predecessors[start:stop], caches=caches,
            ))
        return out, costs

    # -- shared per-epoch building blocks -------------------------------

    @staticmethod
    def _guard_key(table: ShortestPaths) -> tuple:
        """Churn-guard key: tables of the same shape adapt together."""
        sources = table.sources
        return (len(sources), sources[0], sources[-1])

    @staticmethod
    def _classify_changed(
        graph: NetworkGraph, diff: TopologyDiff, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split surviving changed-delay edges into (raised, decreased).

        Classified against the previous epoch's weights.  Steady chains
        share the sorted-key array object between epochs, making
        current ids valid previous ids; otherwise one pair lookup
        resolves them.  Shared verbatim by :meth:`PathEngine.advance`
        and the batched multi-table path.
        """
        changed = diff.delay_changed
        if not changed.size:
            return changed, changed
        if graph.structure_token is diff.previous.structure_token:
            previous_ids = changed
        else:
            previous_ids = diff.previous.edge_ids_between(
                graph.node_a[changed], graph.node_b[changed]
            )
        previous_weights = np.maximum(
            diff.previous.delays_ms[previous_ids], DELAY_EPSILON_MS
        )
        raised = changed[weights[changed] > previous_weights]
        decreased = changed[weights[changed] < previous_weights]
        return raised, decreased

    @staticmethod
    def _severed_closure(
        tree_matrix: np.ndarray,
        predecessors: np.ndarray,
        raised: np.ndarray,
        affected_rows: np.ndarray,
        row_total: int,
        n: int,
        edge_count: int,
        structural: bool,
    ) -> tuple[Optional[np.ndarray], np.ndarray, bool]:
        """Close the directly hit node set over descendants.

        Directly hit nodes are those whose tree edge disappeared or was
        delay-raised; the set is closed over descendants by
        pointer-doubling the predecessor chains (a no-change round
        means every hit ancestor has been seen).  Returns ``(hit,
        affected_rows, full)``: the flat ``(len(affected_rows) * n,)``
        invalidation mask (None when no row lost anything), the rows
        narrowed to those that did, and whether that is every row.
        Row-local — each row's ancestor chains stay inside its own
        ``n``-slice of the flat index space — so stacked multi-table
        calls close every table's rows in the same gathers (extra
        rounds demanded by a slow row are no-ops for converged rows).
        """
        hit = None
        full = affected_rows.size == row_total
        if affected_rows.size:
            sub_matrix = tree_matrix if full else tree_matrix[affected_rows]
            sub_pred = predecessors if full else predecessors[affected_rows]
            raised_mask = np.zeros(edge_count, dtype=bool)
            raised_mask[raised] = True
            direct = (sub_matrix >= 0) & raised_mask[np.maximum(sub_matrix, 0)]
            if structural:
                direct |= (sub_matrix < 0) & (sub_pred >= 0)
            # Narrow to the rows that actually lost something before the
            # closure: on a localized flicker most trees never touch the
            # failed links, and the pointer-doubling gathers below cost
            # O(rows × n) per round.
            row_hit = direct.any(axis=1)
            if row_hit.any():
                if not row_hit.all():
                    affected_rows = affected_rows[row_hit]
                    direct = direct[row_hit]
                    sub_pred = sub_pred[row_hit]
                    full = affected_rows.size == row_total
                k = affected_rows.size
                hit = direct.reshape(-1)
                flat_pred = sub_pred.reshape(-1).astype(np.int64)
                index = np.arange(k * n, dtype=np.int64)
                row_base = np.repeat(np.arange(k, dtype=np.int64) * n, n)
                ancestor = np.where(flat_pred >= 0, row_base + flat_pred, index)
                count, previous_count = int(np.count_nonzero(hit)), -1
                while count != previous_count:
                    np.logical_or(hit, hit[ancestor], out=hit)
                    ancestor = ancestor[ancestor]
                    previous_count, count = count, int(np.count_nonzero(hit))
        return hit, affected_rows, full

    @staticmethod
    def _collect_seeds(
        collected: list,
        distances: np.ndarray,
        weights: np.ndarray,
        node_a: np.ndarray,
        node_b: np.ndarray,
        rows: np.ndarray,
        edge_ids: Optional[np.ndarray],
    ) -> None:
        """Append the violated directed edges among ``edge_ids`` × ``rows``."""
        if rows.size == 0 or (edge_ids is not None and edge_ids.size == 0):
            return
        ea = node_a if edge_ids is None else node_a[edge_ids]
        eb = node_b if edge_ids is None else node_b[edge_ids]
        ew = weights if edge_ids is None else weights[edge_ids]
        sub = distances if rows.size == distances.shape[0] else distances[rows]
        da = sub[:, ea]
        db = sub[:, eb]
        forward_candidate = da + ew
        reverse_candidate = db + ew
        forward = forward_candidate < db
        reverse = reverse_candidate < da
        # Fast exit for the common steady epoch: a pair of boolean
        # reductions is much cheaper than materialising index arrays.
        if not (forward.any() or reverse.any()):
            return
        f_rows, f_edges = np.nonzero(forward)
        r_rows, r_edges = np.nonzero(reverse)
        global_ids = (
            np.concatenate([f_edges, r_edges])
            if edge_ids is None
            else np.concatenate([edge_ids[f_edges], edge_ids[r_edges]])
        )
        collected.append((
            np.concatenate([rows[f_rows], rows[r_rows]]),
            np.concatenate([ea[f_edges], eb[r_edges]]),
            np.concatenate([eb[f_edges], ea[r_edges]]),
            global_ids,
            # How much the candidate undercuts the current value —
            # ``inf`` when it reconnects an unreachable node.  Used
            # only to route the row to heap repair vs the solver.
            np.concatenate([
                db[f_rows, f_edges] - forward_candidate[f_rows, f_edges],
                da[r_rows, r_edges] - reverse_candidate[r_rows, r_edges],
            ]),
        ))

    @staticmethod
    def _boundary_seeds(
        graph: NetworkGraph,
        distances: np.ndarray,
        hit2d: np.ndarray,
        affected_rows: np.ndarray,
        full: bool,
        collected: list,
    ) -> None:
        """Seed the finite→``inf`` boundary of the invalidated region."""
        indptr, adj_nodes, adj_edges = graph.adjacency_arrays()
        local_rows, hit_nodes = np.nonzero(hit2d)
        hit_rows = local_rows if full else affected_rows[local_rows]
        starts = indptr[hit_nodes]
        counts = indptr[hit_nodes + 1] - starts
        total = int(counts.sum())
        if total:
            positions = (
                np.repeat(starts - (np.cumsum(counts) - counts), counts)
                + np.arange(total)
            )
            boundary_rows = np.repeat(hit_rows, counts)
            boundary_parents = adj_nodes[positions]
            finite = np.isfinite(distances[boundary_rows, boundary_parents])
            if finite.any():
                collected.append((
                    boundary_rows[finite],
                    boundary_parents[finite],
                    np.repeat(hit_nodes, counts)[finite],
                    adj_edges[positions][finite],
                    np.full(int(np.count_nonzero(finite)), np.inf),
                ))

    def _kernel_resolve(
        self,
        graph: NetworkGraph,
        weights: np.ndarray,
        distances: np.ndarray,
        predecessors: np.ndarray,
        kernel_rows: list[int],
        seed_rows: np.ndarray,
        seed_parents: np.ndarray,
        seed_children: np.ndarray,
        seed_edges: np.ndarray,
    ) -> int:
        """Repair all handed-off rows in one batched bounded kernel call.

        The rows are compacted into a flat ``(len(kernel_rows) * n,)``
        distance/predecessor view seeded with their violated edges; the
        kernel relaxes to the cold-solve fixed point while the old
        distances bound the traversal to the affected region (see
        :mod:`repro.topology._kernels`).  Returns the settle count.
        """
        indptr, adj_nodes, _ = graph.adjacency_arrays()
        adj_weights = graph.adjacency_weights()
        n = distances.shape[1]
        rows = np.asarray(kernel_rows, dtype=np.int64)
        if rows.size == distances.shape[0]:
            # Every row was handed off (then every seed belongs to a
            # kernel row): the flat views alias the published arrays, so
            # the kernel writes land in place and nothing scatters back.
            return _kernels.bounded_regional_resolve(
                indptr, adj_nodes, adj_weights, n,
                distances.reshape(-1), predecessors.reshape(-1),
                seed_rows * n + seed_parents,
                seed_rows * n + seed_children,
                weights[seed_edges],
                backend=self.kernel_backend,
            )
        compact = np.full(distances.shape[0], -1, dtype=np.int64)
        compact[rows] = np.arange(rows.size, dtype=np.int64)
        mapped = compact[seed_rows]
        selected = mapped >= 0
        flat_base = mapped[selected] * n
        sub_distances = distances[rows].reshape(-1)
        sub_predecessors = predecessors[rows].reshape(-1)
        settles = _kernels.bounded_regional_resolve(
            indptr, adj_nodes, adj_weights, n,
            sub_distances, sub_predecessors,
            flat_base + seed_parents[selected],
            flat_base + seed_children[selected],
            weights[seed_edges[selected]],
            backend=self.kernel_backend,
        )
        distances[rows] = sub_distances.reshape(rows.size, n)
        predecessors[rows] = sub_predecessors.reshape(rows.size, n)
        return settles

    @staticmethod
    def _patched_caches(
        graph: NetworkGraph,
        tree_matrix: np.ndarray,
        previous_caches: _PathCaches,
        old_predecessors: np.ndarray,
        new_predecessors: np.ndarray,
    ) -> _PathCaches:
        """Caches for the next epoch, patched where predecessors changed.

        Repairs touch a small fraction of the predecessor entries, so the
        node-indexed tree-edge matrix is point-patched instead of
        rebuilt — and when the previous epoch's edge→tree membership
        index is still valid for this structure token (delay-only
        chains), its rows are patched the same way instead of dropping
        the index and rebuilding it on the next delay diff.
        """
        caches = _PathCaches()
        caches.edges_token = graph.structure_token
        matrix = tree_matrix.copy()
        # A node that went unreachable keeps its last predecessor (no
        # repair overwrites it), so when a later epoch reconnects it
        # through the SAME parent the pred diff alone cannot see it even
        # though its matrix entry went -1 with the vanished edge.  Re-do
        # the lookup for every -1 entry claiming a parent: a spurious
        # edge id on a still-unreachable node merely over-invalidates an
        # inf cell later, while a spurious -1 here would let a raised
        # tree edge slip past the direct-hit scan.
        stale = (matrix < 0) & (new_predecessors >= 0)
        rows, cols = np.nonzero((new_predecessors != old_predecessors) | stale)
        parents = new_predecessors[rows, cols].astype(np.int64)
        matrix[rows, cols] = -1
        valid = parents >= 0
        if valid.any():
            matrix[rows[valid], cols[valid]] = graph.edge_ids_between(
                parents[valid], cols[valid]
            )
        caches.tree_edge_matrix = matrix
        old_membership = previous_caches.membership
        if (
            old_membership is not None
            and previous_caches.edges_token is caches.edges_token
        ):
            membership = old_membership.copy()
            changed_rows = np.unique(rows)
            membership[changed_rows] = False
            sub = matrix[changed_rows]
            sub_rows, sub_cols = np.nonzero(sub >= 0)
            membership[changed_rows[sub_rows], sub[sub_rows, sub_cols]] = True
            caches.membership = membership
        return caches

    @staticmethod
    def _heap_repair(
        indptr: list[int],
        neighbors: list[int],
        adjacency_weights: list[float],
        weights: np.ndarray,
        dist_row: np.ndarray,
        seeds: list[tuple[int, int, int]],
        budget: int,
    ) -> Optional[tuple[int, dict[int, float], dict[int, int]]]:
        """Dijkstra-style re-relaxation restricted to the affected subtrees.

        Seeded with the violated directed edges, relaxes to the unique
        fixed point where no edge can improve — which equals the cold
        solve bit for bit (see the module docstring).  Improvements are
        tracked in a dict overlay over the (untouched) ``dist_row``, so a
        repair touching ``k`` nodes costs O(k·degree) regardless of the
        row length.  Returns ``(settles, improved, parents)``, or None
        when the touched fraction exceeded the budget (the caller then
        recomputes the row with the batched solver instead).
        """
        base = dist_row.item
        improved: dict[int, float] = {}
        parents: dict[int, int] = {}
        heap: list[tuple[float, int]] = []
        push = heapq.heappush
        pop = heapq.heappop
        get = improved.get
        for parent, child, edge in seeds:
            source_value = get(parent)
            if source_value is None:
                source_value = base(parent)
            candidate = source_value + float(weights[edge])
            current = get(child)
            if current is None:
                current = base(child)
            if candidate < current:
                improved[child] = candidate
                parents[child] = parent
                push(heap, (candidate, child))
        settles = 0
        while heap:
            distance, node = pop(heap)
            if distance > improved[node]:
                continue  # stale entry: the node improved after this push
            settles += 1
            if settles > budget:
                return None
            for position in range(indptr[node], indptr[node + 1]):
                candidate = distance + adjacency_weights[position]
                neighbor = neighbors[position]
                current = get(neighbor)
                if current is None:
                    current = base(neighbor)
                if candidate < current:
                    improved[neighbor] = candidate
                    parents[neighbor] = node
                    push(heap, (candidate, neighbor))
        return settles, improved, parents
