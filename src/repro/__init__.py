"""Celestial: virtual software system testbeds for the LEO edge.

A from-scratch Python reproduction of *Celestial* (Pfandzelter & Bermbach,
Middleware 2022): an emulation testbed for LEO edge computing in which a
coordinator computes satellite constellation state (SGP4/Kepler propagation,
+GRID ISLs, ground-station uplinks, shortest paths) and hosts emulate
satellite/ground-station servers as microVMs with tc-netem-style network
shaping, bounding-box suspension, DNS, an HTTP info API and fault injection.

Quickstart::

    from repro import Celestial, Configuration
    from repro.scenarios import west_africa_configuration

    config = west_africa_configuration(duration_s=60.0)
    testbed = Celestial(config)
    testbed.start()
    testbed.run(until=10.0)
    print(testbed.state.rtt_ms(testbed.ground_station("accra"),
                               testbed.ground_station("abuja")))
"""

from repro.core import (
    BoundingBox,
    Celestial,
    ComputeParams,
    Configuration,
    ConfigurationError,
    ConstellationCalculation,
    GroundStationConfig,
    HostConfig,
    MachineId,
    NetworkParams,
    ShellConfig,
    estimate_resources,
    validate_configuration,
)
from repro.orbits import Epoch, GroundStation, ShellGeometry

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "Celestial",
    "ComputeParams",
    "Configuration",
    "ConfigurationError",
    "ConstellationCalculation",
    "Epoch",
    "GroundStation",
    "GroundStationConfig",
    "HostConfig",
    "MachineId",
    "NetworkParams",
    "ShellConfig",
    "ShellGeometry",
    "estimate_resources",
    "validate_configuration",
    "__version__",
]
